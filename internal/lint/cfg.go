package lint

import (
	"go/ast"
	"go/token"
)

// This file is the control-flow-graph half of the msgown analyzer: a
// small, hand-rolled CFG over ast.Stmt with the same dependency
// posture as the rest of the package (stdlib only, no
// golang.org/x/tools/go/cfg). Blocks hold a flat list of ast.Node
// "atoms" — statements or sub-expressions in evaluation order — and
// the dataflow in msgown.go interprets each atom with a transfer
// function.
//
// The builder covers the statement forms the simulator actually uses:
// if/else, for (all three clauses), range, switch (incl. fallthrough),
// type switch, select, labeled break/continue, goto (conservatively:
// edge to exit), defer (collected for at-exit application), and
// panic-terminated paths (no successor, so leak checks don't fire on
// paths that die).

// cfgBlock is one basic block.
type cfgBlock struct {
	index int
	nodes []ast.Node
	succs []*cfgBlock
}

// funcCFG is the graph for one function body.
type funcCFG struct {
	blocks []*cfgBlock
	entry  *cfgBlock
	exit   *cfgBlock
	// atExit holds every deferred call in registration order; the
	// dataflow applies them (in reverse) to the exit state before the
	// leak-on-return check, so `defer ic.Release(m)` counts.
	atExit []*ast.CallExpr
}

type loopTargets struct {
	brk  *cfgBlock // break target
	cont *cfgBlock // continue target (nil for switch/select)
}

type cfgBuilder struct {
	g   *funcCFG
	cur *cfgBlock // nil after a terminating statement (return/panic/branch)
	// loops is the stack of enclosing breakable constructs; labels maps
	// label names to the construct they head.
	loops  []loopTargets
	labels map[string]loopTargets
	// pendingLabel is set while building the statement a label heads,
	// so the loop builders can register their targets under it.
	pendingLabel string
}

// buildCFG constructs the graph for a function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	g := &funcCFG{}
	b := &cfgBuilder{g: g, labels: make(map[string]loopTargets)}
	g.entry = b.newBlock()
	g.exit = b.newBlock()
	b.cur = g.entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.link(b.cur, g.exit)
	}
	return g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *cfgBlock) {
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
}

// add appends an atom to the current block (creating one if the
// previous statement terminated — unreachable code is still analyzed,
// just with no inbound facts).
func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.nodes = append(b.cur.nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.ExprStmt:
		b.add(s)
		if isPanicOrExit(s.X) {
			b.cur = nil // path dies; no edge to exit
		}
	case *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.GoStmt:
		b.add(s)
	case *ast.DeferStmt:
		b.add(s) // argument evaluation happens here
		b.g.atExit = append(b.g.atExit, s.Call)
	case *ast.ReturnStmt:
		b.add(s)
		if b.cur != nil {
			b.link(b.cur, b.g.exit)
			b.cur = nil
		}
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)
	case *ast.SelectStmt:
		b.selectStmt(s)
	default:
		b.add(s)
	}
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	if b.cur == nil {
		return
	}
	var t loopTargets
	found := false
	if s.Label != nil {
		t, found = b.labels[s.Label.Name]
	} else if len(b.loops) > 0 {
		// break/continue bind to the innermost construct that accepts
		// them; for continue that is the innermost *loop*.
		for i := len(b.loops) - 1; i >= 0; i-- {
			if s.Tok == token.CONTINUE && b.loops[i].cont == nil {
				continue
			}
			t, found = b.loops[i], true
			break
		}
	}
	switch {
	case s.Tok == token.FALLTHROUGH:
		// Handled by switchStmt (it links the clause to the next one);
		// here just stop the normal clause→after edge.
	case found && s.Tok == token.BREAK:
		b.link(b.cur, t.brk)
	case found && s.Tok == token.CONTINUE && t.cont != nil:
		b.link(b.cur, t.cont)
	default:
		// goto, or a label we failed to resolve: be conservative and
		// fall through to exit so owned values aren't reported leaked
		// on paths we can't follow.
		b.link(b.cur, b.g.exit)
	}
	b.cur = nil
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	b.add(s.Init)
	b.add(s.Cond)
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	after := b.newBlock()
	thenGuard, elseGuard := nilGuards(s.Cond)

	then := b.newBlock()
	b.link(head, then)
	if thenGuard != nil {
		then.nodes = append(then.nodes, thenGuard)
	}
	b.cur = then
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.link(b.cur, after)
	}

	switch {
	case s.Else != nil:
		els := b.newBlock()
		b.link(head, els)
		if elseGuard != nil {
			els.nodes = append(els.nodes, elseGuard)
		}
		b.cur = els
		b.stmt(s.Else)
		if b.cur != nil {
			b.link(b.cur, after)
		}
	case elseGuard != nil:
		// No else branch, but the fallthrough edge still learns the
		// negated condition (`if ev == nil { return }` proves ev
		// non-nil below) — give the guard its own block.
		els := b.newBlock()
		els.nodes = append(els.nodes, elseGuard)
		b.link(head, els)
		b.link(els, after)
	default:
		b.link(head, after)
	}
	b.cur = after
}

// nilGuard is a synthetic CFG atom recording that expression x is (or
// is not) nil on the edge it sits on. The dataflow uses it to drop
// ownership tracking on nil paths: a nil pointer can't leak and pool
// ops on it are a separate (dynamic) failure, not an ownership bug.
type nilGuard struct {
	x     ast.Expr
	isNil bool
}

func (g *nilGuard) Pos() token.Pos { return g.x.Pos() }
func (g *nilGuard) End() token.Pos { return g.x.End() }

// nilGuards extracts then/else guards from an `x == nil` / `x != nil`
// condition. Compound conditions (&&, ||) are left unrefined.
func nilGuards(cond ast.Expr) (then, els ast.Node) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, nil
	}
	var x ast.Expr
	if isNilIdent(be.Y) {
		x = be.X
	} else if isNilIdent(be.X) {
		x = be.Y
	} else {
		return nil, nil
	}
	eq := be.Op == token.EQL
	return &nilGuard{x: x, isNil: eq}, &nilGuard{x: x, isNil: !eq}
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	b.add(s.Init)
	head := b.newBlock()
	if b.cur != nil {
		b.link(b.cur, head)
	}
	after := b.newBlock()

	// continue goes to the post statement when there is one.
	cont := head
	var post *cfgBlock
	if s.Post != nil {
		post = b.newBlock()
		post.nodes = append(post.nodes, s.Post)
		b.link(post, head)
		cont = post
	}

	b.cur = head
	b.add(s.Cond)
	head = b.cur // cond may have grown the block; keep the tail
	if s.Cond != nil {
		b.link(head, after) // loop can exit at the test
	}
	b.pushLoop(loopTargets{brk: after, cont: cont})

	body := b.newBlock()
	b.link(head, body)
	b.cur = body
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.link(b.cur, cont)
	}
	b.popLoop()
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	head := b.newBlock()
	if b.cur != nil {
		b.link(b.cur, head)
	}
	// The RangeStmt atom covers X's evaluation and the key/value
	// definitions; the transfer function handles both.
	head.nodes = append(head.nodes, s)
	after := b.newBlock()
	b.link(head, after) // empty range

	b.pushLoop(loopTargets{brk: after, cont: head})
	body := b.newBlock()
	b.link(head, body)
	b.cur = body
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.link(b.cur, head)
	}
	b.popLoop()
	b.cur = after
}

func (b *cfgBuilder) switchStmt(s *ast.SwitchStmt) {
	b.add(s.Init)
	b.add(s.Tag)
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	after := b.newBlock()
	b.pushLoop(loopTargets{brk: after})

	var clauses []*ast.CaseClause
	for _, c := range s.Body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	blocks := make([]*cfgBlock, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		blocks[i] = b.newBlock()
		b.link(head, blocks[i])
		for _, e := range c.List {
			blocks[i].nodes = append(blocks[i].nodes, e)
		}
		if c.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.link(head, after)
	}
	for i, c := range clauses {
		b.cur = blocks[i]
		b.stmtList(trimFallthrough(c.Body))
		if b.cur != nil {
			if fallsThrough(c.Body) && i+1 < len(blocks) {
				b.link(b.cur, blocks[i+1])
			} else {
				b.link(b.cur, after)
			}
			b.cur = nil
		}
	}
	b.popLoop()
	b.cur = after
}

func (b *cfgBuilder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	b.add(s.Init)
	b.add(s.Assign)
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	after := b.newBlock()
	b.pushLoop(loopTargets{brk: after})

	hasDefault := false
	for _, raw := range s.Body.List {
		c := raw.(*ast.CaseClause)
		if c.List == nil {
			hasDefault = true
		}
		blk := b.newBlock()
		b.link(head, blk)
		b.cur = blk
		b.stmtList(c.Body)
		if b.cur != nil {
			b.link(b.cur, after)
		}
	}
	if !hasDefault {
		b.link(head, after)
	}
	b.popLoop()
	b.cur = after
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	after := b.newBlock()
	b.pushLoop(loopTargets{brk: after})
	for _, raw := range s.Body.List {
		c := raw.(*ast.CommClause)
		blk := b.newBlock()
		b.link(head, blk)
		if c.Comm != nil {
			blk.nodes = append(blk.nodes, c.Comm)
		}
		b.cur = blk
		b.stmtList(c.Body)
		if b.cur != nil {
			b.link(b.cur, after)
		}
	}
	b.popLoop()
	b.cur = after
}

func (b *cfgBuilder) pushLoop(t loopTargets) {
	b.loops = append(b.loops, t)
	if b.pendingLabel != "" {
		b.labels[b.pendingLabel] = t
		b.pendingLabel = ""
	}
}

func (b *cfgBuilder) popLoop() {
	b.loops = b.loops[:len(b.loops)-1]
}

// trimFallthrough drops a trailing fallthrough statement from a case
// body (the clause linkage is handled by switchStmt).
func trimFallthrough(body []ast.Stmt) []ast.Stmt {
	if fallsThrough(body) {
		return body[:len(body)-1]
	}
	return body
}

func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// isPanicOrExit reports whether the expression statement unconditionally
// terminates the path: panic(...) or os.Exit(...). Testing helpers
// (t.Fatal) don't appear in the packages msgown analyzes.
func isPanicOrExit(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name == "os" && fun.Sel.Name == "Exit"
		}
	}
	return false
}
