package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
)

// StallWake is the source-level companion of the table-level stall
// lint (internal/protocheck): every queue that parks protocol work
// must have a wake path in the same package.
//
// The controllers stall work by appending the blocked message (or a
// waiter record) to a queue field — the directory's pend map, the
// MSHR waiter lists — and wake it from a completion handler that
// drains the queue. Losing the drain site is how a stalled request
// becomes a hung transaction. The rule:
//
//   - A struct field whose name smells like a stall queue (pend*,
//     *waiter*, *stall*, defer*) and whose type can hold parked work
//     (map, slice, channel) must carry an `//hsclint:stallqueue`
//     annotation, so new queues cannot dodge the lint.
//   - Every annotated queue must have, in its package, at least one
//     park site (append to the field, insert into it, increment an
//     entry, send on it) and at least one wake site (delete from it,
//     clear or reslice it, range over it to replay, decrement an
//     entry, receive from it, or hand it to a drain helper).
var StallWake = &Analyzer{
	Name: "stallwake",
	Doc:  "stall queues must be annotated and every annotated queue needs both a park and a wake site",
	Run:  runStallWake,
}

const stallQueueMarker = "hsclint:stallqueue"

var stallNameRE = regexp.MustCompile(`(?i)(^pend|pending|waiter|stall|^defer|deferred|parked)`)

// queueField is one annotated (or suspicious) queue with its use sites.
type queueField struct {
	name      string
	pos       token.Pos
	annotated bool
	parks     int
	wakes     int
}

func runStallWake(p *Pass) {
	queues := make(map[*types.Var]*queueField)

	// Pass 1: collect struct fields — annotated ones join the queue
	// set; queue-shaped names without the annotation are reported.
	p.inspect(func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok {
			return true
		}
		for _, f := range st.Fields.List {
			annotated := commentsHaveMarker(stallQueueMarker, f.Doc, f.Comment)
			for _, name := range f.Names {
				obj, ok := p.Pkg.Info.Defs[name].(*types.Var)
				if !ok {
					continue
				}
				if annotated {
					queues[obj] = &queueField{name: name.Name, pos: name.Pos(), annotated: true}
					continue
				}
				if stallNameRE.MatchString(name.Name) && queueShaped(obj.Type()) {
					p.Report(name.Pos(),
						"field %s looks like a stall/wait queue; annotate it //hsclint:stallqueue so its wake path is linted (or rename it)",
						name.Name)
				}
			}
		}
		return true
	})
	if len(queues) == 0 {
		return
	}

	// Pass 2: classify every use of a tracked field as park or wake.
	p.inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			classifyAssign(p, queues, n)
		case *ast.IncDecStmt:
			if q := fieldOf(p, queues, baseExpr(n.X)); q != nil {
				if n.Tok == token.INC {
					q.parks++
				} else {
					q.wakes++
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				switch id.Name {
				case "delete":
					if len(n.Args) == 2 {
						if q := fieldOf(p, queues, n.Args[0]); q != nil {
							q.wakes++
						}
					}
					return true
				case "append", "make", "len", "cap", "copy", "new":
					// Builtins: append is classified at its
					// assignment; the rest neither park nor wake.
					return true
				}
			}
			// Handing the whole queue to a helper is how the DMA
			// engine drains its waiter maps — count it as a wake.
			for _, a := range n.Args {
				if q := fieldOf(p, queues, baseExpr(a)); q != nil {
					q.wakes++
				}
			}
		case *ast.RangeStmt:
			if q := fieldOf(p, queues, baseExpr(n.X)); q != nil {
				q.wakes++
			}
		case *ast.SendStmt:
			if q := fieldOf(p, queues, n.Chan); q != nil {
				q.parks++
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if q := fieldOf(p, queues, n.X); q != nil {
					q.wakes++
				}
			}
		}
		return true
	})

	var objs []*types.Var
	for obj := range queues { //hsclint:deterministic — sorted below
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return queues[objs[i]].pos < queues[objs[j]].pos })
	for _, obj := range objs {
		q := queues[obj]
		switch {
		case q.parks == 0:
			p.Report(q.pos, "annotated stall queue %s never parks any work in this package — stale annotation or the park site moved", q.name)
		case q.wakes == 0:
			p.Report(q.pos, "stall queue %s parks work but has no wake site in this package (no delete/clear/reslice/range/receive) — parked work can never resume", q.name)
		}
	}
}

// classifyAssign sorts an assignment touching a tracked field into
// park (grow) or wake (shrink/replay) and bumps the counters.
func classifyAssign(p *Pass, queues map[*types.Var]*queueField, n *ast.AssignStmt) {
	for i, lhs := range n.Lhs {
		q := fieldOf(p, queues, baseExpr(lhs))
		if q == nil {
			continue
		}
		var rhs ast.Expr
		if len(n.Rhs) == len(n.Lhs) {
			rhs = n.Rhs[i]
		} else if len(n.Rhs) == 1 {
			rhs = n.Rhs[0]
		}
		switch {
		case isMakeCall(rhs) || isEmptyCompositeLit(rhs):
			// Initialization: neither parks nor wakes.
		case isAppendOf(p, queues, q, rhs):
			q.parks++
		case isIndexExpr(lhs):
			// Inserting or overwriting one entry grows the queue.
			q.parks++
		default:
			// nil, a sub-slice, an element-dropping append — a drain.
			q.wakes++
		}
	}
}

// fieldOf resolves e to a tracked queue field, unwrapping parens.
func fieldOf(p *Pass, queues map[*types.Var]*queueField, e ast.Expr) *queueField {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := p.Pkg.Info.Selections[e]; ok {
			if v, ok := sel.Obj().(*types.Var); ok {
				return queues[v]
			}
		}
	case *ast.Ident:
		if v, ok := p.Pkg.Info.Uses[e].(*types.Var); ok {
			return queues[v]
		}
	}
	return nil
}

// baseExpr strips indexing: q.f[k] → q.f.
func baseExpr(e ast.Expr) ast.Expr {
	if ix, ok := ast.Unparen(e).(*ast.IndexExpr); ok {
		return ix.X
	}
	return e
}

func isIndexExpr(e ast.Expr) bool {
	_, ok := ast.Unparen(e).(*ast.IndexExpr)
	return ok
}

// isAppendOf reports whether rhs is append(f, ...) or append(f[k], ...)
// for the same tracked field — a grow. An append over a *slice
// expression* of the field (append(f[:i], f[i+1:]...)) removes an
// element and is left to the default wake classification.
func isAppendOf(p *Pass, queues map[*types.Var]*queueField, q *queueField, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	return fieldOf(p, queues, baseExpr(call.Args[0])) == q
}

func isMakeCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "make"
}

func isEmptyCompositeLit(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.CompositeLit)
	return ok && len(lit.Elts) == 0
}

// queueShaped reports whether t can hold parked work.
func queueShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Map, *types.Slice, *types.Chan:
		return true
	}
	return false
}
