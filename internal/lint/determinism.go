package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// detPackages are the packages whose behavior must be a pure function
// of (workload, config, seed): the hot-path simulator packages plus
// everything the harnesses replay — the model checker re-executes
// action prefixes from scratch and the conformance matrix diffs final
// images across runs, so any wall-clock or ambient-randomness
// dependence in these packages breaks both. Workload generators are
// included: their outputs are the reproducers the minimizer shrinks.
var detPackages = func() map[string]bool {
	m := map[string]bool{
		"hscsim/internal/chai":       true,
		"hscsim/internal/conform":    true,
		"hscsim/internal/fsm":        true,
		"hscsim/internal/heterosync": true,
		"hscsim/internal/memdata":    true,
		"hscsim/internal/stats":      true,
		"hscsim/internal/verify":     true,
	}
	for pkg := range hotPackages { //hsclint:deterministic — building a set
		m[pkg] = true
	}
	return m
}()

// bannedTimeFuncs are the wall-clock entry points of package time. The
// pure constructors and arithmetic (Duration, Unix, Date…) stay legal:
// only functions that read the real clock (or schedule on it) make a
// run irreproducible.
var bannedTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Sleep":     true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"AfterFunc": true,
}

// allowedRandFuncs are the package-level math/rand identifiers that do
// NOT touch the ambient global source: constructors and distributions.
// Everything else at package level (rand.Intn, rand.Seed, rand.Perm…)
// draws from the shared process-global generator, whose sequence
// depends on what every other component consumed before — methods on
// an explicitly seeded *rand.Rand are the deterministic replacement.
var allowedRandFuncs = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// Determinism bans ambient nondeterminism — wall-clock reads and the
// process-global math/rand source — in simulation-reachable packages.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "no wall-clock time or global math/rand in simulation-reachable packages",
	Run:  runDeterminism,
}

func runDeterminism(p *Pass) {
	if !detPackages[p.Pkg.PkgPath] {
		return
	}
	// Map iteration order is ambient nondeterminism too. The hot-path
	// packages are maploop's territory; cover the remaining
	// simulation-reachable ones here so each range is reported once.
	if !hotPackages[p.Pkg.PkgPath] {
		reportMapRanges(p, "map iteration order is randomized and this package is simulation-reachable; iterate sorted keys, or annotate //%s if order provably cannot matter")
	}
	p.inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgName, fn := pkgFuncOf(p, sel)
		switch pkgName {
		case "time":
			if bannedTimeFuncs[fn] {
				p.Report(sel.Pos(),
					"time.%s reads the wall clock; simulation-reachable packages must be a pure function of (workload, config, seed) — use sim.Engine ticks",
					fn)
			}
		case "math/rand":
			// Type references (*rand.Rand in a signature) are the
			// deterministic idiom itself, not a draw from the global
			// source.
			if _, isType := p.Pkg.Info.Uses[sel.Sel].(*types.TypeName); isType {
				return true
			}
			if !allowedRandFuncs[fn] {
				p.Report(sel.Pos(),
					"rand.%s draws from the process-global source; use a seeded *rand.Rand (rand.New(rand.NewSource(seed)))",
					fn)
			}
		}
		return true
	})
}

// pkgFuncOf resolves a selector to (import path, name) when it is a
// package-level reference (time.Now, rand.Intn); methods on values —
// including *rand.Rand methods — resolve to ("", name) and pass.
func pkgFuncOf(p *Pass, sel *ast.SelectorExpr) (string, string) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", sel.Sel.Name
	}
	pn, ok := p.Pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", sel.Sel.Name
	}
	path := pn.Imported().Path()
	// The loader resolves vendored stdlib paths verbatim; normalize any
	// "vendor/" prefix so the match is on the canonical import path.
	path = strings.TrimPrefix(path, "vendor/")
	return path, sel.Sel.Name
}
