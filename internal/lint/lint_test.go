package lint

import (
	"strings"
	"testing"
)

const badPkg = "hscsim/internal/lint/testdata/bad"

func loadBad(t *testing.T) []*Package {
	t.Helper()
	pkgs, err := Load(".", badPkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	return pkgs
}

// countBy tallies diagnostics per analyzer.
func countBy(diags []Diagnostic) map[string]int {
	n := make(map[string]int)
	for _, d := range diags {
		n[d.Analyzer]++
	}
	return n
}

func TestMsgSwitchCatchesNonExhaustive(t *testing.T) {
	diags := Check(loadBad(t), []*Analyzer{MsgSwitch})
	if len(diags) != 1 {
		t.Fatalf("diags = %v, want exactly 1", diags)
	}
	m := diags[0].Message
	for _, want := range []string{"PrbAck", "Resp", "VicDirty"} {
		if !strings.Contains(m, want) {
			t.Errorf("missing-type list lacks %s: %s", want, m)
		}
	}
	for _, covered := range []string{"RdBlk,", "WT,"} {
		if strings.Contains(m, covered) {
			t.Errorf("covered type reported as missing: %s in %s", covered, m)
		}
	}
}

func TestMapLoopCatchesUnannotatedRange(t *testing.T) {
	pkgs := loadBad(t)
	// The testdata package is not on the real hot list; mark it hot for
	// the duration of the test.
	hotPackages[badPkg] = true
	defer delete(hotPackages, badPkg)

	diags := Check(pkgs, []*Analyzer{MapLoop})
	if len(diags) != 1 {
		t.Fatalf("diags = %v, want exactly 1 (the annotated range must be suppressed)", diags)
	}
	if !strings.Contains(diags[0].Message, "map iteration") {
		t.Fatalf("unexpected message: %s", diags[0].Message)
	}
}

func TestMapLoopIgnoresColdPackages(t *testing.T) {
	if diags := Check(loadBad(t), []*Analyzer{MapLoop}); len(diags) != 0 {
		t.Fatalf("cold package reported: %v", diags)
	}
}

func TestStatsRegCatchesUnassignedFields(t *testing.T) {
	diags := Check(loadBad(t), []*Analyzer{StatsReg})
	if len(diags) != 2 {
		t.Fatalf("diags = %v, want exactly 2 (misses, lat)", diags)
	}
	joined := diags[0].Message + " " + diags[1].Message
	if !strings.Contains(joined, "widget.misses") || !strings.Contains(joined, "widget.lat") {
		t.Fatalf("wrong fields reported: %v", diags)
	}
	if strings.Contains(joined, "widget.hits") {
		t.Fatalf("registered field reported: %v", diags)
	}
}

// TestRepoIsClean is the enforcement test: the whole module must pass
// every analyzer. It doubles as an integration test of the go-list
// loader (export data, cross-package types).
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := Load(".", "hscsim/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("only %d packages loaded — loader lost some", len(pkgs))
	}
	diags := Check(pkgs, All())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if n := countBy(diags); len(n) > 0 {
		t.Fatalf("per-analyzer counts: %v", n)
	}
}
