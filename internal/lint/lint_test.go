package lint

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

const badPkg = "hscsim/internal/lint/testdata/bad"

func loadBad(t *testing.T) []*Package {
	t.Helper()
	pkgs, err := Load(".", badPkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	return pkgs
}

// countBy tallies diagnostics per analyzer.
func countBy(diags []Diagnostic) map[string]int {
	n := make(map[string]int)
	for _, d := range diags {
		n[d.Analyzer]++
	}
	return n
}

func TestMsgSwitchCatchesNonExhaustive(t *testing.T) {
	diags := Check(loadBad(t), []*Analyzer{MsgSwitch})
	if len(diags) != 1 {
		t.Fatalf("diags = %v, want exactly 1", diags)
	}
	m := diags[0].Message
	for _, want := range []string{"PrbAck", "Resp", "VicDirty"} {
		if !strings.Contains(m, want) {
			t.Errorf("missing-type list lacks %s: %s", want, m)
		}
	}
	for _, covered := range []string{"RdBlk,", "WT,"} {
		if strings.Contains(m, covered) {
			t.Errorf("covered type reported as missing: %s in %s", covered, m)
		}
	}
}

func TestMapLoopCatchesUnannotatedRange(t *testing.T) {
	pkgs := loadBad(t)
	// The testdata package is not on the real hot list; mark it hot for
	// the duration of the test.
	hotPackages[badPkg] = true
	defer delete(hotPackages, badPkg)

	diags := Check(pkgs, []*Analyzer{MapLoop})
	if len(diags) != 1 {
		t.Fatalf("diags = %v, want exactly 1 (the annotated range must be suppressed)", diags)
	}
	if !strings.Contains(diags[0].Message, "map iteration") {
		t.Fatalf("unexpected message: %s", diags[0].Message)
	}
}

func TestMapLoopIgnoresColdPackages(t *testing.T) {
	if diags := Check(loadBad(t), []*Analyzer{MapLoop}); len(diags) != 0 {
		t.Fatalf("cold package reported: %v", diags)
	}
}

func TestStatsRegCatchesUnassignedFields(t *testing.T) {
	diags := Check(loadBad(t), []*Analyzer{StatsReg})
	// Two unassigned fields (misses, lat), one handle copied from
	// another struct, one wrong-kind registration, one duplicate name.
	if len(diags) != 5 {
		t.Fatalf("diags = %v, want exactly 5", diags)
	}
	var msgs []string
	for _, d := range diags {
		msgs = append(msgs, d.Message)
	}
	joined := strings.Join(msgs, "\n")
	for _, want := range []string{
		"widget.misses", "widget.lat",
		"straight from Scope.Counter", "straight from Scope.Histogram",
		"duplicate registration of Counter",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing a diagnostic matching %q in:\n%s", want, joined)
		}
	}
	if strings.Contains(joined, "widget.hits") || strings.Contains(joined, `"out"`) {
		t.Fatalf("correctly registered field reported: %v", diags)
	}
}

func TestDeterminismCatchesClockAndGlobalRand(t *testing.T) {
	pkgs := loadBad(t)
	detPackages[badPkg] = true
	defer delete(detPackages, badPkg)

	diags := Check(pkgs, []*Analyzer{Determinism})
	var msgs []string
	for _, d := range diags {
		msgs = append(msgs, d.Message)
	}
	joined := strings.Join(msgs, "\n")
	for _, want := range []string{"time.Now", "time.Since", "rand.Seed", "rand.Intn"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing a %s diagnostic in:\n%s", want, joined)
		}
	}
	// False-positive guard: exactly the two clock reads, the two global
	// draws, and sum's unannotated map range (det-only packages get the
	// map check from this analyzer) — so rand.New, rand.NewSource, the
	// *rand.Rand method call and the Duration arithmetic all passed.
	if len(diags) != 5 {
		t.Errorf("got %d diagnostics, want 5:\n%s", len(diags), joined)
	}
}

func TestDeterminismIgnoresUnreachablePackages(t *testing.T) {
	if diags := Check(loadBad(t), []*Analyzer{Determinism}); len(diags) != 0 {
		t.Fatalf("package outside the simulation-reachable set reported: %v", diags)
	}
}

func TestStallWakeQueueRules(t *testing.T) {
	diags := Check(loadBad(t), []*Analyzer{StallWake})
	if len(diags) != 3 {
		t.Fatalf("diags = %v, want exactly 3 (stalledReqs, noWake, neverFilled)", diags)
	}
	var msgs []string
	for _, d := range diags {
		msgs = append(msgs, d.Message)
	}
	joined := strings.Join(msgs, "\n")
	for _, want := range []string{"stalledReqs", "noWake", "neverFilled"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing a %s diagnostic in:\n%s", want, joined)
		}
	}
	// The annotated queue with both a park and a wake site must pass.
	if strings.Contains(joined, "good") {
		t.Errorf("correct park/wake queue reported:\n%s", joined)
	}
}

// wantRE matches one golden expectation: //want <analyzer> "<substring>"
var wantRE = regexp.MustCompile(`//want (\w+) "([^"]+)"`)

// checkGoldens runs the analyzers over pkgs and matches the
// diagnostics, line by line, against the //want comments in srcPath
// (the analysistest idiom): every diagnostic needs a matching
// expectation and every expectation a diagnostic, so a golden test
// fails on both missed bugs and false positives. minWants guards
// against the testdata silently losing expectations.
func checkGoldens(t *testing.T, pkgs []*Package, analyzers []*Analyzer, srcPath string, minWants int) {
	t.Helper()
	type want struct {
		analyzer, substr string
		matched          bool
	}
	src, err := os.ReadFile(srcPath)
	if err != nil {
		t.Fatal(err)
	}
	wants := make(map[int][]*want)
	total := 0
	for i, line := range strings.Split(string(src), "\n") {
		for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
			wants[i+1] = append(wants[i+1], &want{analyzer: m[1], substr: m[2]})
			total++
		}
	}
	if total < minWants {
		t.Fatalf("only %d //want expectations parsed from %s — the testdata lost some", total, srcPath)
	}

	for _, d := range Check(pkgs, analyzers) {
		matched := false
		for _, w := range wants[d.Pos.Line] {
			if !w.matched && w.analyzer == d.Analyzer && strings.Contains(d.Message, w.substr) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for line, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("line %d: no %s diagnostic matching %q", line, w.analyzer, w.substr)
			}
		}
	}
}

// TestGoldenExpectations runs every analyzer over the testdata package
// and matches the diagnostics against the //want comments.
func TestGoldenExpectations(t *testing.T) {
	pkgs := loadBad(t)
	hotPackages[badPkg] = true
	detPackages[badPkg] = true
	defer func() {
		delete(hotPackages, badPkg)
		delete(detPackages, badPkg)
	}()
	checkGoldens(t, pkgs, All(), "testdata/bad/bad.go", 14)
}

// TestRepoIsClean is the enforcement test: the whole module must pass
// every analyzer. It doubles as an integration test of the go-list
// loader (export data, cross-package types).
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := Load(".", "hscsim/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("only %d packages loaded — loader lost some", len(pkgs))
	}
	diags := Check(pkgs, All())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if n := countBy(diags); len(n) > 0 {
		t.Fatalf("per-analyzer counts: %v", n)
	}
}
