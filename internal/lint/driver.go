package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the shared analyzer driver: the package-walking,
// marker-scanning and annotation-indexing boilerplate that every
// analyzer used to hand-roll (msgswitch/maploop/statsreg/determinism/
// stallwake each carried its own file loop, msgown its own annotation
// index). New analyzers — lockcheck is the first — compose these
// helpers instead of re-implementing them.

// inspect runs fn over every file in the package under analysis, in
// file order (the ast.Inspect contract: return false to skip a
// subtree).
func (p *Pass) inspect(fn func(ast.Node) bool) {
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, fn)
	}
}

// markerLines collects the line numbers of every comment in file
// containing marker. Line-based markers are the suppression idiom for
// statement-level rules (`//hsclint:deterministic` on a range,
// `//lockcheck:spawn` on a go statement): a finding on a marked line —
// or the line directly below a marked line — is authored intent.
func markerLines(p *Pass, file *ast.File, marker string) map[int]bool {
	marked := make(map[int]bool)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, marker) {
				marked[p.Pkg.Fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return marked
}

// commentsHaveMarker reports whether any of the comment groups (a
// field's Doc or line Comment, typically) contains marker.
func commentsHaveMarker(marker string, groups ...*ast.CommentGroup) bool {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if strings.Contains(c.Text, marker) {
				return true
			}
		}
	}
	return false
}

// directive is one parsed `//<prefix>:<verb> <rest>` comment line.
type directive struct {
	verb string
	rest string
	pos  token.Pos
}

// args splits the directive's rest on commas and spaces.
func (d directive) args() []string {
	return strings.FieldsFunc(d.rest, func(r rune) bool {
		return r == ',' || r == ' ' || r == '\t'
	})
}

// parseDirectives extracts every `//<prefix><verb> <rest>` directive
// from the comment groups. prefix includes the trailing colon
// ("msgown:", "lockcheck:").
func parseDirectives(prefix string, groups ...*ast.CommentGroup) []directive {
	var out []directive
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, prefix) {
				continue
			}
			verb, rest, _ := strings.Cut(strings.TrimPrefix(text, prefix), " ")
			out = append(out, directive{verb: verb, rest: strings.TrimSpace(rest), pos: c.Pos()})
		}
	}
	return out
}

// funcDirectives collects `//<prefix>...` directives from every
// function declaration and interface method across all loaded
// packages, keyed by types.Func full name — so cross-package call
// sites (which see a distinct export-data object) still resolve. This
// is the cross-function annotation mechanism msgown introduced,
// factored out for any annotation vocabulary (lockcheck reuses it).
func funcDirectives(pkgs []*Package, prefix string) map[string][]directive {
	idx := make(map[string][]directive)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				ds := parseDirectives(prefix, fd.Doc)
				if len(ds) == 0 {
					continue
				}
				if fn, ok := funcObj(pkg, fd.Name); ok {
					idx[fn] = append(idx[fn], ds...)
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				it, ok := n.(*ast.InterfaceType)
				if !ok {
					return true
				}
				for _, m := range it.Methods.List {
					if len(m.Names) == 0 {
						continue
					}
					ds := parseDirectives(prefix, m.Doc, m.Comment)
					if len(ds) == 0 {
						continue
					}
					if fn, ok := funcObj(pkg, m.Names[0]); ok {
						idx[fn] = append(idx[fn], ds...)
					}
				}
				return true
			})
		}
	}
	return idx
}

// funcObj resolves a declaring identifier to its types.Func full name.
func funcObj(pkg *Package, id *ast.Ident) (string, bool) {
	if fn, ok := pkg.Info.Defs[id].(*types.Func); ok {
		return fn.FullName(), true
	}
	return "", false
}
