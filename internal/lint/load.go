package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// listedPackage is the subset of `go list -json` output we consume.
type listedPackage struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load resolves the package patterns with the go tool and type-checks
// every matched (non-dependency) package against compiler export data.
// It needs no network and no module downloads: `go list -export`
// builds export data for the current module and the baked-in standard
// library only.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string) // import path → export-data file
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			q := p
			targets = append(targets, &q)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := typecheck(t, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func typecheck(lp *listedPackage, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{PkgPath: lp.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
