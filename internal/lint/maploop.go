package lint

import (
	"go/ast"
	"go/types"
)

// deterministicMarker suppresses a maploop finding when it appears on
// the range statement's line or the line above it — the author asserts
// the loop body is insensitive to iteration order (commutative
// accumulation, or keys sorted before use).
const deterministicMarker = "hsclint:deterministic"

// hotPackages are the packages on the simulation fast path, where map
// iteration order would leak Go's randomized ordering into simulated
// behavior and break run-to-run determinism (the model checker's
// replay-based search and the determinism regression tests both depend
// on it).
var hotPackages = map[string]bool{
	"hscsim/internal/sim":        true,
	"hscsim/internal/core":       true,
	"hscsim/internal/corepair":   true,
	"hscsim/internal/gpucache":   true,
	"hscsim/internal/cpu":        true,
	"hscsim/internal/gpu":        true,
	"hscsim/internal/dma":        true,
	"hscsim/internal/noc":        true,
	"hscsim/internal/memctrl":    true,
	"hscsim/internal/system":     true,
	"hscsim/internal/cachearray": true,
	"hscsim/internal/prog":       true,
}

// MapLoop flags `range` over map values in simulator hot-path packages.
var MapLoop = &Analyzer{
	Name: "maploop",
	Doc:  "no raw map iteration in simulator hot paths (nondeterministic order)",
	Run:  runMapLoop,
}

func runMapLoop(p *Pass) {
	if !hotPackages[p.Pkg.PkgPath] {
		return
	}
	reportMapRanges(p, "map iteration order is randomized and this package is on the simulator hot path; iterate sorted keys, or annotate //%s if order provably cannot matter")
}

// reportMapRanges flags every map range in the package not annotated
// with the deterministic marker (on its line or the line above).
func reportMapRanges(p *Pass, format string) {
	for _, file := range p.Pkg.Files {
		marked := markerLines(p, file, deterministicMarker)
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := p.Pkg.Info.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			line := p.Pkg.Fset.Position(rs.Pos()).Line
			if marked[line] || marked[line-1] {
				return true
			}
			p.Report(rs.Pos(), format, deterministicMarker)
			return true
		})
	}
}
