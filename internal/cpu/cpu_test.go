package cpu

import (
	"testing"

	"hscsim/internal/corepair"
	"hscsim/internal/memdata"
	"hscsim/internal/msg"
	"hscsim/internal/noc"
	"hscsim/internal/prog"
	"hscsim/internal/sim"
	"hscsim/internal/stats"
)

// grantAll is a minimal directory granting every request.
type grantAll struct {
	ic      *noc.Interconnect
	id      msg.NodeID
	rdBlkS  int
	demand  int
	victims int
}

func (d *grantAll) Receive(m *msg.Message) {
	switch m.Type {
	case msg.RdBlk, msg.RdBlkS, msg.RdBlkM:
		d.demand++
		if m.Type == msg.RdBlkS {
			d.rdBlkS++
		}
		g := msg.GrantS
		if m.Type == msg.RdBlkM {
			g = msg.GrantM
		}
		d.ic.Send(&msg.Message{Type: msg.Resp, Addr: m.Addr, Src: d.id, Dst: m.Src, Grant: g})
	case msg.VicDirty, msg.VicClean:
		d.victims++
		d.ic.Send(&msg.Message{Type: msg.WBAck, Addr: m.Addr, Src: d.id, Dst: m.Src})
	case msg.Unblock:
	}
}

type fakeDispatcher struct{ launched []*prog.Kernel }

func (f *fakeDispatcher) Launch(k *prog.Kernel, h *prog.KernelHandle) {
	f.launched = append(f.launched, k)
	h.CompleteKernel()
}

type fakeDMA struct{ streams int }

func (f *fakeDMA) Stream(base uint64, length int, write bool, maxOut int, done func()) {
	f.streams++
	done()
}

type coreRig struct {
	t    *testing.T
	e    *sim.Engine
	core *Core
	fm   *memdata.Memory
	dir  *grantAll
	gpu  *fakeDispatcher
	dma  *fakeDMA
}

func statsScope(t *testing.T) *stats.Scope {
	t.Helper()
	return stats.NewRegistry().Scope("core")
}

func newCoreRig(t *testing.T) *coreRig {
	t.Helper()
	e := sim.NewEngine()
	e.MaxTicks = 1_000_000
	reg := stats.NewRegistry()
	ic := noc.New(e, noc.Config{Latency: 2}, reg.Scope("noc"))
	fm := memdata.New()
	d := &grantAll{ic: ic, id: 9}
	ic.Register(9, d)
	pair := corepair.New(e, ic, 0, 9, corepair.DefaultConfig(), reg.Scope("cp"))
	gpu := &fakeDispatcher{}
	dma := &fakeDMA{}
	c := New(e, pair, 0, fm, gpu, dma, DefaultConfig(), 0xF0000000, reg.Scope("core"))
	return &coreRig{t: t, e: e, core: c, fm: fm, dir: d, gpu: gpu, dma: dma}
}

func (r *coreRig) runThread(fn func(*prog.CPUThread)) {
	r.t.Helper()
	exited := false
	th := prog.NewCPUThread(0, fn)
	r.core.Run(th, func() { exited = true })
	if err := r.e.Run(); err != nil {
		r.t.Fatal(err)
	}
	if !exited {
		r.t.Fatal("thread never exited")
	}
}

func TestCoreExecutesOpsInOrder(t *testing.T) {
	r := newCoreRig(t)
	var loaded uint64
	r.runThread(func(c *prog.CPUThread) {
		c.Store(0x100, 7)
		loaded = c.Load(0x100)
		c.Compute(100)
	})
	if loaded != 7 {
		t.Fatalf("loaded = %d", loaded)
	}
	if r.fm.Read(0x100) != 7 {
		t.Fatal("store not applied to functional memory")
	}
}

func TestComputeAdvancesTime(t *testing.T) {
	r := newCoreRig(t)
	r.runThread(func(c *prog.CPUThread) {
		c.Compute(5000)
	})
	if r.e.Now() < 5000 {
		t.Fatalf("now = %d, want ≥ 5000", r.e.Now())
	}
}

func TestAtomicRMWAtOwnership(t *testing.T) {
	r := newCoreRig(t)
	var old uint64
	r.runThread(func(c *prog.CPUThread) {
		c.Store(0x200, 10)
		old = c.AtomicAdd(0x200, 3)
	})
	if old != 10 || r.fm.Read(0x200) != 13 {
		t.Fatalf("old=%d val=%d", old, r.fm.Read(0x200))
	}
}

func TestIFetchTrafficAppears(t *testing.T) {
	r := newCoreRig(t)
	r.runThread(func(c *prog.CPUThread) {
		for i := 0; i < 100; i++ {
			c.Compute(1)
		}
	})
	// 100 ops × 8 B/op over a 4 KB footprint crosses line boundaries:
	// some RdBlkS ifetches must reach the directory.
	if r.dir.rdBlkS == 0 {
		t.Fatal("no instruction-fetch traffic")
	}
}

func TestLaunchAndWaitKernel(t *testing.T) {
	r := newCoreRig(t)
	k := &prog.Kernel{Name: "k"}
	r.runThread(func(c *prog.CPUThread) {
		h := c.Launch(k)
		c.Wait(h)
	})
	if len(r.gpu.launched) != 1 || r.gpu.launched[0] != k {
		t.Fatal("kernel not dispatched")
	}
}

func TestDMAOpDelegates(t *testing.T) {
	r := newCoreRig(t)
	r.runThread(func(c *prog.CPUThread) {
		c.DMAIn(0x1000, 512)
	})
	if r.dma.streams != 1 {
		t.Fatal("DMA stream not issued")
	}
}

func newSBCoreRig(t *testing.T, sbSize int) *coreRig {
	t.Helper()
	r := newCoreRig(t)
	// Rebuild the core with a store buffer.
	cfg := DefaultConfig()
	cfg.StoreBufferSize = sbSize
	r.core = New(r.core.engine, r.core.pair, 0, r.fm, r.gpu, r.dma, cfg, 0xF0000000,
		statsScope(t))
	return r
}

// TestStoreBufferHidesLatency: N independent stores retire faster with
// a store buffer than blocking, and all values land.
func TestStoreBufferHidesLatency(t *testing.T) {
	run := func(sb int) (uint64, *coreRig) {
		var r *coreRig
		if sb > 0 {
			r = newSBCoreRig(t, sb)
		} else {
			r = newCoreRig(t)
		}
		r.runThread(func(c *prog.CPUThread) {
			for i := 0; i < 16; i++ {
				c.Store(memdata.Addr(0x1000+i*256), uint64(i))
			}
		})
		return uint64(r.e.Now()), r
	}
	blocking, _ := run(0)
	buffered, r := run(8)
	if buffered >= blocking {
		t.Fatalf("store buffer did not overlap stores: %d vs %d", buffered, blocking)
	}
	for i := 0; i < 16; i++ {
		if got := r.fm.Read(memdata.Addr(0x1000 + i*256)); got != uint64(i) {
			t.Fatalf("store %d lost: %d", i, got)
		}
	}
}

// TestStoreBufferForwarding: a load after a buffered store to the same
// word observes the store (program order).
func TestStoreBufferForwarding(t *testing.T) {
	r := newSBCoreRig(t, 8)
	var got uint64
	r.runThread(func(c *prog.CPUThread) {
		c.Store(0x2000, 7)
		c.Store(0x2000, 9)
		got = c.Load(0x2000)
	})
	if got != 9 {
		t.Fatalf("forwarded load = %d, want 9 (youngest store)", got)
	}
}

// TestStoreBufferFencesAtomics: an atomic observes every earlier store.
func TestStoreBufferFencesAtomics(t *testing.T) {
	r := newSBCoreRig(t, 8)
	var old uint64
	r.runThread(func(c *prog.CPUThread) {
		c.Store(0x3000, 5)
		old = c.AtomicAdd(0x3000, 1)
	})
	if old != 5 || r.fm.Read(0x3000) != 6 {
		t.Fatalf("old=%d final=%d", old, r.fm.Read(0x3000))
	}
}

// TestStoreBufferCapacityStalls: more stores than slots must stall (and
// be counted) but still retire in order.
func TestStoreBufferCapacityStalls(t *testing.T) {
	r := newSBCoreRig(t, 2)
	r.runThread(func(c *prog.CPUThread) {
		for i := 0; i < 8; i++ {
			c.Store(memdata.Addr(0x4000+i*512), uint64(i+1))
		}
	})
	for i := 0; i < 8; i++ {
		if got := r.fm.Read(memdata.Addr(0x4000 + i*512)); got != uint64(i+1) {
			t.Fatalf("store %d = %d", i, got)
		}
	}
	if r.core.sbStalls.Value() == 0 {
		t.Fatal("no capacity stalls counted")
	}
}
