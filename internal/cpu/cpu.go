// Package cpu models the CPU cores of the simulated APU. Each core
// executes one workload thread (package prog) in order: memory
// operations walk the CorePair cache hierarchy and block until
// permission is obtained; compute operations advance simulated time.
//
// The paper uses gem5's out-of-order X86O3CPU; the coherence-protocol
// results it reports are driven by the access and sharing pattern, which
// an in-order core preserves (DESIGN.md, substitutions).
package cpu

import (
	"hscsim/internal/cachearray"
	"hscsim/internal/corepair"
	"hscsim/internal/memdata"
	"hscsim/internal/msg"
	"hscsim/internal/prog"
	"hscsim/internal/sim"
	"hscsim/internal/stats"
)

// Dispatcher launches GPU kernels on behalf of host threads.
type Dispatcher interface {
	Launch(k *prog.Kernel, h *prog.KernelHandle)
}

// Observer receives issue/retire notifications for the core's memory
// operations. The runtime coherence oracle (internal/verify) attaches
// here to check the data-value invariant: a load must observe a line
// version at least as new as the line's version when the load issued.
// node identifies the core's CorePair L2 on the interconnect.
type Observer interface {
	// LoadIssued fires when a load leaves the core; the returned token is
	// handed back to LoadRetired (the oracle stores the issue-time line
	// version in it).
	LoadIssued(node msg.NodeID, line cachearray.LineAddr) (token uint64)
	// LoadRetired fires when the load's value is bound.
	LoadRetired(node msg.NodeID, line cachearray.LineAddr, token uint64)
	// StoreRetired fires at the store's global serialization point: when
	// the cache access that obtained write permission completes (for
	// buffered stores, that is store-buffer drain, not retire into the
	// buffer). Atomics count as stores.
	StoreRetired(node msg.NodeID, line cachearray.LineAddr)
}

// DMAStreamer runs host-initiated DMA transfers.
type DMAStreamer interface {
	Stream(base uint64, length int, write bool, maxOutstanding int, done func())
}

// Config sets per-core parameters.
type Config struct {
	// CodeFootprintBytes is the instruction working set per thread; the
	// core issues an L1I fetch each time the program counter crosses
	// into a new line of it.
	CodeFootprintBytes uint64
	// BytesPerOp advances the program counter per executed operation.
	BytesPerOp uint64
	// LaunchLatency models kernel-dispatch overhead in ticks.
	LaunchLatency sim.Tick
	// StoreBufferSize > 0 retires stores into a FIFO store buffer that
	// drains in the background (program order preserved; loads forward
	// from the buffer; atomics, DMA and kernel launches fence). 0 — the
	// default — keeps fully blocking stores.
	StoreBufferSize int
	// Observer, when non-nil, receives issue/retire notifications
	// (coherence-oracle hook).
	Observer Observer
}

// DefaultConfig returns a 4 KB code footprint with 8-byte ops and a
// modest kernel-launch overhead.
func DefaultConfig() Config {
	return Config{CodeFootprintBytes: 4 << 10, BytesPerOp: 8, LaunchLatency: 500}
}

// Core executes one workload thread on one CorePair slot.
type Core struct {
	engine *sim.Engine
	pair   *corepair.CorePair
	slot   int // 0 or 1 within the CorePair
	fm     *memdata.Memory
	gpu    Dispatcher
	dma    DMAStreamer
	cfg    Config

	thread   *prog.CPUThread
	codeBase memdata.Addr
	pc       uint64
	onExit   func()

	// Store buffer (Config.StoreBufferSize > 0).
	sb         []pendingStore
	sbDraining bool
	afterDrain func() // one deferred action waiting for an empty buffer
	afterPop   func() // one deferred action waiting for a free slot

	ops      *stats.Counter
	sbStalls *stats.Counter
	sbFwds   *stats.Counter
}

type pendingStore struct {
	addr memdata.Addr
	val  uint64
}

// New creates a core bound to slot `slot` of pair.
func New(engine *sim.Engine, pair *corepair.CorePair, slot int, fm *memdata.Memory,
	gpu Dispatcher, dma DMAStreamer, cfg Config, codeBase memdata.Addr, sc *stats.Scope) *Core {
	return &Core{
		engine: engine, pair: pair, slot: slot, fm: fm, gpu: gpu, dma: dma, cfg: cfg,
		codeBase: codeBase,
		ops:      sc.Counter("ops"),
		sbStalls: sc.Counter("store_buffer_stalls"),
		sbFwds:   sc.Counter("store_buffer_forwards"),
	}
}

// Run starts executing thread; onExit fires when the thread returns.
func (c *Core) Run(thread *prog.CPUThread, onExit func()) {
	c.thread = thread
	c.onExit = onExit
	c.engine.Schedule(0, c.step)
}

func line(a memdata.Addr) cachearray.LineAddr { return cachearray.LineAddr(a >> 6) }

// cpuKindResume is the Core's only event kind: resume the thread with
// the value in arg. Compute ops and store-buffer hits retire through it
// without allocating a closure per op.
const cpuKindResume uint8 = 0

// OnEvent implements sim.Handler.
func (c *Core) OnEvent(kind uint8, arg uint64, obj any) { c.resume(arg) }

func (c *Core) step() {
	op, ok := c.thread.NextOp()
	if !ok {
		// Drain buffered stores before retiring the thread.
		c.whenDrained(c.onExit)
		return
	}
	c.ops.Inc()
	c.fetchThen(func() { c.exec(op) })
}

// whenDrained runs fn once the store buffer is empty.
func (c *Core) whenDrained(fn func()) {
	if len(c.sb) == 0 {
		fn()
		return
	}
	c.afterDrain = fn
}

// drain writes buffered stores back in FIFO order, one at a time.
func (c *Core) drain() {
	if len(c.sb) == 0 {
		c.sbDraining = false
		if fn := c.afterDrain; fn != nil {
			c.afterDrain = nil
			fn()
		}
		return
	}
	c.sbDraining = true
	s := c.sb[0]
	c.pair.Access(c.slot, corepair.Store, line(s.addr), func() {
		c.fm.Write(s.addr, s.val)
		if obs := c.cfg.Observer; obs != nil {
			obs.StoreRetired(c.pair.NodeID(), line(s.addr))
		}
		c.sb = c.sb[1:]
		if fn := c.afterPop; fn != nil {
			c.afterPop = nil
			fn()
		}
		c.drain()
	})
}

// whenDrainedBelow runs fn once the buffer has fewer than n entries.
func (c *Core) whenDrainedBelow(n int, fn func()) {
	if len(c.sb) < n {
		fn()
		return
	}
	c.afterPop = fn
}

// fetchThen models the instruction stream: the program counter advances
// every op within a small looping footprint; crossing into a new cache
// line costs an L1I access (an L2 RdBlkS on cold misses).
func (c *Core) fetchThen(then func()) {
	prev := c.pc / 64
	c.pc += c.cfg.BytesPerOp
	if c.pc >= c.cfg.CodeFootprintBytes {
		c.pc = 0
	}
	if c.pc/64 == prev {
		then()
		return
	}
	c.pair.Access(c.slot, corepair.IFetch, line(c.codeBase+memdata.Addr(c.pc)), then)
}

func (c *Core) exec(op prog.Op) {
	switch op.Kind {
	case prog.OpLoad:
		// Store-to-load forwarding: the youngest buffered store to the
		// same word supplies the value without a cache access.
		if c.cfg.StoreBufferSize > 0 {
			word := op.Addr &^ 7
			for i := len(c.sb) - 1; i >= 0; i-- {
				if c.sb[i].addr&^7 == word {
					c.sbFwds.Inc()
					c.engine.Post(1, c, cpuKindResume, c.sb[i].val, nil)
					return
				}
			}
		}
		var token uint64
		if obs := c.cfg.Observer; obs != nil {
			token = obs.LoadIssued(c.pair.NodeID(), line(op.Addr))
		}
		c.pair.Access(c.slot, corepair.Load, line(op.Addr), func() {
			if obs := c.cfg.Observer; obs != nil {
				obs.LoadRetired(c.pair.NodeID(), line(op.Addr), token)
			}
			c.resume(c.fm.Read(op.Addr))
		})
	case prog.OpStore:
		if c.cfg.StoreBufferSize > 0 {
			if len(c.sb) >= c.cfg.StoreBufferSize {
				// Full: retry once the head retires.
				c.sbStalls.Inc()
				c.whenDrainedBelow(c.cfg.StoreBufferSize, func() { c.exec(op) })
				return
			}
			c.sb = append(c.sb, pendingStore{op.Addr, op.Value})
			if !c.sbDraining {
				c.drain()
			}
			c.engine.Post(1, c, cpuKindResume, 0, nil)
			return
		}
		c.pair.Access(c.slot, corepair.Store, line(op.Addr), func() {
			c.fm.Write(op.Addr, op.Value)
			if obs := c.cfg.Observer; obs != nil {
				obs.StoreRetired(c.pair.NodeID(), line(op.Addr))
			}
			c.resume(0)
		})
	case prog.OpAtomic:
		// CPU atomics serialize at ownership: the RMW applies once the
		// line is held Modified. Atomics fence the store buffer.
		c.whenDrained(func() {
			c.pair.Access(c.slot, corepair.RMW, line(op.Addr), func() {
				old := c.fm.RMW(op.Addr, op.AOp, op.Value, op.Compare)
				if obs := c.cfg.Observer; obs != nil {
					obs.StoreRetired(c.pair.NodeID(), line(op.Addr))
				}
				c.resume(old)
			})
		})
	case prog.OpCompute:
		d := sim.Tick(op.Cycles)
		if d == 0 {
			d = 1
		}
		c.engine.Post(d, c, cpuKindResume, 0, nil)
	case prog.OpLaunch:
		c.whenDrained(func() {
			c.engine.Schedule(c.cfg.LaunchLatency, func() {
				c.gpu.Launch(op.Kernel, op.Handle)
				c.resume(0)
			})
		})
	case prog.OpWait:
		op.Handle.OnDone(func() { c.resume(0) })
	case prog.OpDMA:
		c.whenDrained(func() {
			c.dma.Stream(uint64(op.Addr), op.DMABytes, op.DMAWrite, 8, func() { c.resume(0) })
		})
	}
}

func (c *Core) resume(v uint64) {
	c.thread.Complete(v)
	c.step()
}
