package proto

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"path/filepath"
	"strings"

	"hscsim/internal/lint"
)

// ControllerPackages are the packages whose Record call sites define
// the protocol transition tables.
var ControllerPackages = []string{
	"hscsim/internal/core",
	"hscsim/internal/corepair",
	"hscsim/internal/dma",
	"hscsim/internal/gpu",
	"hscsim/internal/gpucache",
}

const recorderPkg = "hscsim/internal/fsm"

// Extract loads the controller packages (dir is any directory inside
// the module) and returns the transition table reconstructed from
// their Record call sites.
func Extract(dir string) (*Table, error) {
	sites, err := ExtractSites(dir, ControllerPackages...)
	if err != nil {
		return nil, err
	}
	return Build(sites)
}

// ExtractSites loads the given packages and returns every resolved
// Record call site, in source order.
func ExtractSites(dir string, patterns ...string) ([]Site, error) {
	pkgs, err := lint.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var sites []Site
	for _, pkg := range pkgs {
		s, err := packageSites(pkg)
		if err != nil {
			return nil, err
		}
		sites = append(sites, s...)
	}
	return sites, nil
}

func packageSites(pkg *lint.Package) ([]Site, error) {
	var sites []Site
	for _, file := range pkg.Files {
		// Trailing //proto: annotations are matched to call sites by
		// line; collect every comment's text per line first.
		lineText := make(map[int]string)
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				line := pkg.Fset.Position(c.Slash).Line
				lineText[line] += " " + c.Text
			}
		}
		var fileErr error
		ast.Inspect(file, func(n ast.Node) bool {
			if fileErr != nil {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok || !isRecordCall(pkg, call) {
				return true
			}
			pos := pkg.Fset.Position(call.Lparen)
			site, err := resolveSite(pkg, call, lineText[pos.Line])
			if err != nil {
				fileErr = err
				return false
			}
			sites = append(sites, site)
			return true
		})
		if fileErr != nil {
			return nil, fileErr
		}
	}
	return sites, nil
}

// isRecordCall reports whether the call is (*fsm.Recorder).Record.
func isRecordCall(pkg *lint.Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Record" {
		return false
	}
	s := pkg.Info.Selections[sel]
	if s == nil {
		return false
	}
	fn, ok := s.Obj().(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == recorderPkg
}

func resolveSite(pkg *lint.Package, call *ast.CallExpr, comment string) (Site, error) {
	pos := pkg.Fset.Position(call.Lparen)
	at := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
	if len(call.Args) != 4 {
		return Site{}, fmt.Errorf("proto: %s: Record call with %d args, want 4", at, len(call.Args))
	}
	attrs, err := parseAttrs(comment)
	if err != nil {
		return Site{}, fmt.Errorf("proto: %s: %v", at, err)
	}

	machine, ok := constString(pkg, call.Args[0])
	if !ok {
		return Site{}, fmt.Errorf("proto: %s: machine argument must be a string constant", at)
	}
	s := Site{Machine: machine, Pos: at, Actions: attrs["actions"]}
	if s.States, err = argDomain(pkg, call.Args[1], attrs, "states", at); err != nil {
		return Site{}, err
	}
	if s.Events, err = argDomain(pkg, call.Args[2], attrs, "events", at); err != nil {
		return Site{}, err
	}
	if s.Nexts, err = argDomain(pkg, call.Args[3], attrs, "next", at); err != nil {
		return Site{}, err
	}
	if w := attrs["when"]; w != "" {
		s.When = splitList(w)
	}
	if u := attrs["unless"]; u != "" {
		s.Unless = splitList(u)
	}
	if e := attrs["emits"]; e != "" {
		s.Emits = splitList(e)
	}
	if c := attrs["consumes"]; c != "" {
		s.Consumes = splitList(c)
	}
	return s, nil
}

// argDomain resolves one Record argument to its value domain: the
// constant's value when the argument is a typed or untyped string
// constant, the //proto: annotation otherwise.
func argDomain(pkg *lint.Package, arg ast.Expr, attrs map[string]string, key, at string) ([]string, error) {
	if v, ok := constString(pkg, arg); ok {
		return []string{v}, nil
	}
	if a := attrs[key]; a != "" {
		return splitList(a), nil
	}
	return nil, fmt.Errorf("proto: %s: %s argument is not constant and the call line has no //proto:%s annotation", at, key, key)
}

func constString(pkg *lint.Package, e ast.Expr) (string, bool) {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// parseAttrs parses the //proto: annotations out of a call line's
// comment text. Keys may appear at most once per site.
func parseAttrs(text string) (map[string]string, error) {
	attrs := make(map[string]string)
	chunks := strings.Split(text, "proto:")
	for _, chunk := range chunks[1:] {
		// A following comment marker ends the value.
		if i := strings.Index(chunk, "//"); i >= 0 {
			chunk = chunk[:i]
		}
		chunk = strings.TrimSpace(chunk)
		key, value := chunk, ""
		if i := strings.IndexByte(chunk, ' '); i >= 0 {
			key, value = chunk[:i], strings.TrimSpace(chunk[i+1:])
		}
		switch key {
		case "states", "events", "next", "actions", "when", "unless", "emits", "consumes":
			if _, dup := attrs[key]; dup {
				return nil, fmt.Errorf("duplicate //proto:%s annotation", key)
			}
			if value == "" {
				return nil, fmt.Errorf("empty //proto:%s annotation", key)
			}
			attrs[key] = value
		default:
			return nil, fmt.Errorf("unknown //proto:%s annotation", key)
		}
	}
	return attrs, nil
}

func splitList(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
