package proto

import (
	"fmt"
	"sort"

	"hscsim/internal/msg"
)

// CheckStatic verifies the extracted table against the handwritten
// spec and returns every problem found (empty means the table passes):
//
//   - the extracted machine set matches the spec machine set;
//   - every state/event/next value lies in the spec domains;
//   - Reachable and Impossible exactly partition States×Events;
//   - every reachable (state, event) cell is handled or waived;
//   - no extracted transition handles an unreachable cell;
//   - no waiver or coverage exemption is stale;
//   - option guards reference real core.Options fields, and only the
//     LLC write-policy machine carries guards at all;
//   - the per-option table deltas and the per-variant active tables
//     match the paper's (LLCOptionDeltas, LLCVariantTables).
func CheckStatic(t *Table) []string {
	var problems []string
	bad := func(format string, args ...interface{}) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	specs := Specs()
	specNames := make(map[string]bool, len(specs))
	for _, s := range specs {
		specNames[s.Name] = true
		if t.Machine(s.Name) == nil {
			bad("%s: machine in spec but not extracted from source", s.Name)
		}
	}
	for _, m := range t.Machines {
		if !specNames[m.Name] {
			bad("%s: machine extracted from source but has no spec", m.Name)
		}
	}

	for _, s := range specs {
		m := t.Machine(s.Name)
		if m == nil {
			continue
		}
		checkMachine(s, m, bad)
	}

	checkGuards(t, bad)
	checkEmits(t, bad)
	checkDeltas(t, bad)
	checkVariants(t, bad)
	return problems
}

// checkEmits validates that every //proto:emits and //proto:consumes
// value names a real message type — a typo here would silently punch a
// hole in the static safety analyses that consume the metadata.
func checkEmits(t *Table, bad func(string, ...interface{})) {
	for _, m := range t.Machines {
		for _, e := range m.Entries {
			for _, name := range e.Emits {
				if _, ok := msg.TypeByName(name); !ok {
					bad("%s: %s: emits unknown message type %q", m.Name, siteList(e), name)
				}
			}
			for _, name := range e.Consumes {
				if _, ok := msg.TypeByName(name); !ok {
					bad("%s: %s: consumes unknown message type %q", m.Name, siteList(e), name)
				}
			}
		}
	}
}

func checkMachine(s *MachineSpec, m *Machine, bad func(string, ...interface{})) {
	states := stringSet(s.States)
	events := stringSet(s.Events)
	nexts := stringSet(s.Nexts)

	// Spec self-consistency: Reachable ∪ Impossible = States×Events,
	// disjoint; waivers and exemptions point at real cells/transitions.
	reach := make(map[Pair]bool, len(s.Reachable))
	for _, p := range s.Reachable {
		if reach[p] {
			bad("%s: spec lists %s as reachable twice", s.Name, p)
		}
		reach[p] = true
		if _, ok := s.Impossible[p]; ok {
			bad("%s: spec lists %s as both reachable and impossible", s.Name, p)
		}
	}
	for _, st := range s.States {
		for _, ev := range s.Events {
			p := Pair{State: st, Event: ev}
			if !reach[p] {
				if _, ok := s.Impossible[p]; !ok {
					bad("%s: spec covers neither reachable nor impossible for %s", s.Name, p)
				}
			}
		}
	}
	for p := range s.Impossible {
		if !states[p.State] || !events[p.Event] {
			bad("%s: impossible cell %s is outside the spec domains", s.Name, p)
		}
	}
	for p := range s.Waived {
		if !reach[p] {
			bad("%s: waiver for %s, which the spec does not list as reachable", s.Name, p)
		}
	}

	// Extracted table vs spec.
	handled := make(map[Pair]bool)
	for _, e := range m.Entries {
		if !states[e.State] {
			bad("%s: %s: state %q outside spec domain (%s)", s.Name, siteList(e), e.State, e.TKey)
		}
		if !events[e.Event] {
			bad("%s: %s: event %q outside spec domain (%s)", s.Name, siteList(e), e.Event, e.TKey)
		}
		if !nexts[e.Next] {
			bad("%s: %s: next state %q outside spec domain (%s)", s.Name, siteList(e), e.Next, e.TKey)
		}
		p := Pair{State: e.State, Event: e.Event}
		handled[p] = true
		if reason, ok := s.Impossible[p]; ok {
			bad("%s: %s: handles %s, which the spec marks impossible (%s)", s.Name, siteList(e), p, reason)
		} else if !reach[p] {
			bad("%s: %s: handles %s, which the spec does not list as reachable", s.Name, siteList(e), p)
		}
	}
	for _, p := range s.Reachable {
		if handled[p] {
			continue
		}
		if _, waived := s.Waived[p]; waived {
			continue
		}
		bad("%s: reachable cell %s has no handler in the source", s.Name, p)
	}
	for p, reason := range s.Waived {
		if handled[p] {
			bad("%s: stale waiver: %s is handled at %v (waived as %q)", s.Name, p, m.entrySites(p), reason)
		}
	}
	for k := range s.CoverageExempt {
		if m.Entry(k) == nil {
			bad("%s: stale coverage exemption: %s is not in the extracted table", s.Name, k)
		}
	}
}

// checkGuards validates option names and confines guards to dir.llc.
func checkGuards(t *Table, bad func(string, ...interface{})) {
	for _, m := range t.Machines {
		for _, e := range m.Entries {
			for _, g := range e.Guards {
				for _, o := range append(append([]string{}, g.Require...), g.Forbid...) {
					if !KnownOptions[o] {
						bad("%s: %s: guard references unknown option %q", m.Name, siteList(e), o)
					}
				}
				for _, o := range g.Require {
					if contains(g.Forbid, o) {
						bad("%s: %s: guard both requires and forbids %q", m.Name, siteList(e), o)
					}
				}
				if m.Name != "dir.llc" && (len(g.Require) > 0 || len(g.Forbid) > 0) {
					bad("%s: %s: option guard outside dir.llc — only the LLC write policy is variant-gated", m.Name, siteList(e))
				}
			}
		}
	}
}

// checkDeltas verifies each option's table delta: the transitions that
// require the option are exactly the paper's.
func checkDeltas(t *Table, bad func(string, ...interface{})) {
	m := t.Machine("dir.llc")
	if m == nil {
		return
	}
	options := make([]string, 0, len(LLCOptionDeltas))
	for o := range LLCOptionDeltas {
		options = append(options, o)
	}
	sort.Strings(options)
	for _, option := range options {
		want := make(map[TKey]bool)
		for _, k := range LLCOptionDeltas[option] {
			want[k] = true
		}
		for _, e := range m.Entries {
			if e.EnabledBy(option) && !want[e.TKey] {
				bad("dir.llc: %s requires %s but is not in the paper's %s delta", e.TKey, option, option)
			}
		}
		for k := range want {
			e := m.Entry(k)
			if e == nil {
				bad("dir.llc: %s delta transition %s is not in the extracted table", option, k)
			} else if !e.EnabledBy(option) {
				bad("dir.llc: %s is in the paper's %s delta but no site requires %s", k, option, option)
			}
		}
	}
}

// checkVariants verifies that guard evaluation reproduces the expected
// active dir.llc table for every paper variant.
func checkVariants(t *Table, bad func(string, ...interface{})) {
	m := t.Machine("dir.llc")
	if m == nil {
		return
	}
	for _, v := range LLCVariantTables() {
		enabled := OptionSet(v.Opts)
		want := make(map[TKey]bool)
		for _, k := range v.Active {
			want[k] = true
		}
		for _, e := range m.Entries {
			if e.ActiveUnder(enabled) != want[e.TKey] {
				state := "inactive"
				if want[e.TKey] {
					state = "active"
				}
				bad("dir.llc: variant %q: %s should be %s per the paper's table diff",
					v.Opts.Named(), e.TKey, state)
			}
		}
		for k := range want {
			if m.Entry(k) == nil {
				bad("dir.llc: variant %q: expected transition %s is not in the extracted table", v.Opts.Named(), k)
			}
		}
	}
}

// entrySites lists the sites handling one (state, event) cell.
func (m *Machine) entrySites(p Pair) []string {
	var out []string
	for _, e := range m.Entries {
		if e.State == p.State && e.Event == p.Event {
			out = append(out, e.Sites...)
		}
	}
	sort.Strings(out)
	return out
}

func siteList(e *Entry) string {
	if len(e.Sites) == 0 {
		return "?"
	}
	if len(e.Sites) == 1 {
		return e.Sites[0]
	}
	return fmt.Sprintf("%s (+%d more)", e.Sites[0], len(e.Sites)-1)
}

func stringSet(xs []string) map[string]bool {
	m := make(map[string]bool, len(xs))
	for _, x := range xs {
		m[x] = true
	}
	return m
}
