package proto

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Arm is one flattened transition row for baseline diffing: a machine's
// (state, event) → next with its rendered guard and action columns —
// exactly one Markdown table row of TABLES.md. Diffing flattened arms
// instead of raw JSON makes a protocol change reviewable transition by
// transition.
type Arm struct {
	Machine string
	State   string
	Event   string
	Next    string
	Guard   string
	Actions string
}

// armKey identifies an arm: a machine may declare several next-states
// for one (state, event) cell under different guards, so Next is part
// of the identity and guard/action changes are reported as modified.
type armKey struct {
	Machine, State, Event, Next string
}

func (k armKey) String() string {
	return fmt.Sprintf("%s (%s, %s) -> %s", k.Machine, k.State, k.Event, k.Next)
}

// Arms flattens the table into sorted rows, rendered exactly as
// TABLES.md renders them.
func (t *Table) Arms() []Arm {
	var out []Arm
	for _, m := range t.Machines {
		for _, e := range m.Entries {
			out = append(out, Arm{
				Machine: m.Name,
				State:   e.State,
				Event:   e.Event,
				Next:    e.Next,
				Guard:   guardColumn(e),
				Actions: strings.Join(e.Actions, "; "),
			})
		}
	}
	sortArms(out)
	return out
}

func sortArms(arms []Arm) {
	sort.Slice(arms, func(i, j int) bool {
		a, b := arms[i], arms[j]
		switch {
		case a.Machine != b.Machine:
			return a.Machine < b.Machine
		case a.State != b.State:
			return a.State < b.State
		case a.Event != b.Event:
			return a.Event < b.Event
		default:
			return a.Next < b.Next
		}
	})
}

// ParseBaseline parses a committed baseline into arms. Both baseline
// formats the repository produces are accepted: TABLES.md Markdown
// (`hscproto -write`) and table JSON (`hscproto -json`).
func ParseBaseline(b []byte) ([]Arm, error) {
	trimmed := strings.TrimSpace(string(b))
	if strings.HasPrefix(trimmed, "{") {
		var tbl Table
		if err := json.Unmarshal(b, &tbl); err != nil {
			return nil, fmt.Errorf("proto: baseline JSON: %w", err)
		}
		return tbl.Arms(), nil
	}
	return parseMarkdownArms(trimmed)
}

// parseMarkdownArms recovers arms from the TABLES.md rendering: `## x`
// headings name the machine, `| a | b | c | d | e |` rows are arms
// (header and separator rows are skipped).
func parseMarkdownArms(s string) ([]Arm, error) {
	var out []Arm
	machine := ""
	for _, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "## "):
			machine = strings.TrimSpace(strings.TrimPrefix(line, "## "))
		case strings.HasPrefix(line, "|"):
			cells := strings.Split(strings.Trim(line, "|"), "|")
			if len(cells) != 5 {
				continue
			}
			for i := range cells {
				cells[i] = strings.TrimSpace(cells[i])
			}
			if cells[0] == "State" || strings.HasPrefix(cells[0], "---") {
				continue
			}
			if machine == "" {
				return nil, fmt.Errorf("proto: baseline table row before any '## machine' heading: %q", line)
			}
			out = append(out, Arm{
				Machine: machine, State: cells[0], Event: cells[1],
				Next: cells[2], Guard: cells[3], Actions: cells[4],
			})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("proto: baseline contains no transition rows")
	}
	sortArms(out)
	return out, nil
}

// ArmDelta is one reviewable difference between a baseline and the
// current table.
type ArmDelta struct {
	// Kind is "added", "removed" or "changed".
	Kind string
	// Old is unset for "added"; New is unset for "removed".
	Old, New *Arm
}

// DiffArms compares a baseline against the current arms. Deltas come
// back sorted by machine/state/event/next with removals first at each
// position, so a diff reads like the table.
func DiffArms(baseline, current []Arm) []ArmDelta {
	index := func(arms []Arm) map[armKey]*Arm {
		m := make(map[armKey]*Arm, len(arms))
		for i := range arms {
			a := &arms[i]
			m[armKey{a.Machine, a.State, a.Event, a.Next}] = a
		}
		return m
	}
	base, cur := index(baseline), index(current)

	var out []ArmDelta
	for i := range baseline {
		old := &baseline[i]
		k := armKey{old.Machine, old.State, old.Event, old.Next}
		switch now, ok := cur[k]; {
		case !ok:
			out = append(out, ArmDelta{Kind: "removed", Old: old})
		case now.Guard != old.Guard || now.Actions != old.Actions:
			out = append(out, ArmDelta{Kind: "changed", Old: old, New: now})
		}
	}
	for i := range current {
		now := &current[i]
		if _, ok := base[armKey{now.Machine, now.State, now.Event, now.Next}]; !ok {
			out = append(out, ArmDelta{Kind: "added", New: now})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := out[i].arm(), out[j].arm()
		ki := armKey{ai.Machine, ai.State, ai.Event, ai.Next}
		kj := armKey{aj.Machine, aj.State, aj.Event, aj.Next}
		if ki != kj {
			return ki.String() < kj.String()
		}
		return out[i].Kind < out[j].Kind // added < changed < removed
	})
	return out
}

// arm returns the delta's identifying arm (the new side when present).
func (d ArmDelta) arm() *Arm {
	if d.New != nil {
		return d.New
	}
	return d.Old
}

// FormatDiff renders deltas for review, grouped per machine:
//
//	dir.cpu
//	  + (S, RdBlkM) -> M  [always]  {inval sharers}
//	  - (S, RdBlkM) -> O  [always]  {forward}
//	  ~ (M, Probe)  -> O  guard: always -> llcWriteBack
//
// An empty delta list renders as "transition tables match baseline".
func FormatDiff(deltas []ArmDelta) string {
	if len(deltas) == 0 {
		return "transition tables match baseline\n"
	}
	var b strings.Builder
	machine := ""
	row := func(a *Arm) string {
		return fmt.Sprintf("(%s, %s) -> %s  [%s]  {%s}", a.State, a.Event, a.Next, a.Guard, a.Actions)
	}
	added, removed, changed := 0, 0, 0
	for _, d := range deltas {
		if m := d.arm().Machine; m != machine {
			machine = m
			fmt.Fprintf(&b, "%s\n", machine)
		}
		switch d.Kind {
		case "added":
			added++
			fmt.Fprintf(&b, "  + %s\n", row(d.New))
		case "removed":
			removed++
			fmt.Fprintf(&b, "  - %s\n", row(d.Old))
		default:
			changed++
			fmt.Fprintf(&b, "  ~ (%s, %s) -> %s", d.New.State, d.New.Event, d.New.Next)
			if d.Old.Guard != d.New.Guard {
				fmt.Fprintf(&b, "  guard: %s -> %s", d.Old.Guard, d.New.Guard)
			}
			if d.Old.Actions != d.New.Actions {
				fmt.Fprintf(&b, "  actions: {%s} -> {%s}", d.Old.Actions, d.New.Actions)
			}
			b.WriteString("\n")
		}
	}
	fmt.Fprintf(&b, "%d added, %d removed, %d changed\n", added, removed, changed)
	return b.String()
}
