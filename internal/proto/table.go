package proto

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// JSON renders the table as indented JSON, machines and entries in
// deterministic order.
func (t *Table) JSON() ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}

// Markdown renders the table as one GitHub-flavored Markdown section
// per machine, deterministic and diff-friendly (TABLES.md is generated
// from this and checked in).
func (t *Table) Markdown() string {
	var b strings.Builder
	b.WriteString("# Protocol transition tables\n\n")
	b.WriteString("Extracted from the controller sources by `go run ./cmd/hscproto -table`.\n")
	b.WriteString("Regenerate with `go run ./cmd/hscproto -write` after changing any\n")
	b.WriteString("`fsm.Recorder.Record` site; `hscproto -check` fails CI when this file\n")
	b.WriteString("is stale. The Guard column lists the `core.Options` gates under which\n")
	b.WriteString("a transition can fire (`always` = unconditional, `!X` = X unset).\n")
	for _, m := range t.Machines {
		fmt.Fprintf(&b, "\n## %s\n\n", m.Name)
		if s := SpecFor(m.Name); s != nil {
			fmt.Fprintf(&b, "%d transitions over %d (state, event) cells; %d cells impossible by construction.\n\n",
				len(m.Entries), len(s.Reachable), len(s.Impossible))
		}
		b.WriteString("| State | Event | Next | Guard | Actions |\n")
		b.WriteString("|---|---|---|---|---|\n")
		for _, e := range m.Entries {
			fmt.Fprintf(&b, "| %s | %s | %s | %s | %s |\n",
				e.State, e.Event, e.Next, guardColumn(e), strings.Join(e.Actions, "; "))
		}
		if s := SpecFor(m.Name); s != nil && len(s.Impossible) > 0 {
			b.WriteString("\nImpossible cells:\n\n")
			for _, line := range impossibleLines(s) {
				fmt.Fprintf(&b, "- %s\n", line)
			}
		}
	}
	return b.String()
}

// guardColumn summarizes an entry's guards: "always" as soon as any
// contributing site is unconditional, the distinct guard strings
// otherwise.
func guardColumn(e *Entry) string {
	var parts []string
	for _, g := range e.Guards {
		if len(g.Require) == 0 && len(g.Forbid) == 0 {
			return "always"
		}
		if s := g.String(); !contains(parts, s) {
			parts = append(parts, s)
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, " / ")
}

// impossibleLines groups a spec's impossible cells by justification.
func impossibleLines(s *MachineSpec) []string {
	byReason := make(map[string][]Pair)
	for p, reason := range s.Impossible {
		byReason[reason] = append(byReason[reason], p)
	}
	reasons := make([]string, 0, len(byReason))
	for r := range byReason {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	var out []string
	for _, r := range reasons {
		ps := byReason[r]
		sort.Slice(ps, func(i, j int) bool {
			if ps[i].State != ps[j].State {
				return ps[i].State < ps[j].State
			}
			return ps[i].Event < ps[j].Event
		})
		strs := make([]string, len(ps))
		for i, p := range ps {
			strs[i] = p.String()
		}
		out = append(out, fmt.Sprintf("%s — %s", strings.Join(strs, ", "), r))
	}
	return out
}
