package proto

import (
	"fmt"
	"sort"
	"strings"

	"hscsim/internal/fsm"
)

// Coverage is the static-vs-dynamic cross-check result for one
// machine: which statically extracted transitions the recorded runs
// actually fired.
type Coverage struct {
	Machine       string
	Declared      int    // transitions in the extracted table
	Fired         int    // declared transitions observed at run time
	Exempt        int    // declared transitions excused by the spec
	Unfired       []TKey // declared, not exempt, never fired
	ExemptUnfired []TKey // declared, exempt, never fired
	Unknown       []TKey // fired but not declared — an extraction gap
}

// CrossCheck compares the extracted table with the transitions a
// recorder observed. Every machine of the table gets a Coverage entry;
// transitions fired under machine names absent from the table are
// reported under their own name with only Unknown populated.
func CrossCheck(t *Table, rec *fsm.Recorder) []Coverage {
	fired := make(map[string]map[TKey]bool)
	for _, tr := range rec.Transitions() {
		byKey := fired[tr.Machine]
		if byKey == nil {
			byKey = make(map[TKey]bool)
			fired[tr.Machine] = byKey
		}
		byKey[TKey{State: tr.State, Event: tr.Event, Next: tr.Next}] = true
	}

	var out []Coverage
	for _, m := range t.Machines {
		cov := Coverage{Machine: m.Name, Declared: len(m.Entries)}
		spec := SpecFor(m.Name)
		declared := make(map[TKey]bool, len(m.Entries))
		for _, e := range m.Entries {
			declared[e.TKey] = true
			exempt := false
			if spec != nil {
				_, exempt = spec.CoverageExempt[e.TKey]
			}
			if exempt {
				cov.Exempt++
			}
			if fired[m.Name][e.TKey] {
				cov.Fired++
			} else if exempt {
				cov.ExemptUnfired = append(cov.ExemptUnfired, e.TKey)
			} else {
				cov.Unfired = append(cov.Unfired, e.TKey)
			}
		}
		for k := range fired[m.Name] {
			if !declared[k] {
				cov.Unknown = append(cov.Unknown, k)
			}
		}
		sortKeys(cov.Unfired)
		sortKeys(cov.ExemptUnfired)
		sortKeys(cov.Unknown)
		out = append(out, cov)
	}

	// Machines the recorder saw but the table does not know at all.
	names := make([]string, 0, len(fired))
	for name := range fired {
		if t.Machine(name) == nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		cov := Coverage{Machine: name}
		for k := range fired[name] {
			cov.Unknown = append(cov.Unknown, k)
		}
		sortKeys(cov.Unknown)
		out = append(out, cov)
	}
	return out
}

func sortKeys(ks []TKey) {
	sort.Slice(ks, func(i, j int) bool {
		a, b := ks[i], ks[j]
		if a.State != b.State {
			return a.State < b.State
		}
		if a.Event != b.Event {
			return a.Event < b.Event
		}
		return a.Next < b.Next
	})
}

// Summarize reduces a cross-check to the CI verdict: the fired
// percentage over non-exempt declared transitions, and the failure
// reasons. Unknown-fired transitions (extraction gaps) always fail;
// unfired ones fail only when coverage drops below minPercent, in
// which case each is listed by name.
func Summarize(cov []Coverage, minPercent float64) (percent float64, problems []string) {
	declared, fired := 0, 0
	var unfired []string
	for _, c := range cov {
		declared += c.Declared - c.Exempt
		// Exempt transitions that fired anyway do not count either way.
		fired += c.Fired - (c.Exempt - len(c.ExemptUnfired))
		for _, k := range c.Unfired {
			unfired = append(unfired, fmt.Sprintf("%s: declared but never fired: %s", c.Machine, k))
		}
		for _, k := range c.Unknown {
			problems = append(problems, fmt.Sprintf("%s: fired but not in the static table (extraction gap): %s", c.Machine, k))
		}
	}
	if declared == 0 {
		return 0, append(problems, "no transitions declared")
	}
	percent = 100 * float64(fired) / float64(declared)
	if percent < minPercent {
		problems = append(problems, unfired...)
		problems = append(problems, fmt.Sprintf("coverage %.1f%% (%d/%d non-exempt transitions fired) below the %.0f%% bar",
			percent, fired, declared, minPercent))
	}
	return percent, problems
}

// Report renders a cross-check as text: one line per machine, then the
// unfired and unknown transitions by name.
func Report(cov []Coverage) string {
	var b strings.Builder
	for _, c := range cov {
		if c.Declared == 0 {
			fmt.Fprintf(&b, "%-14s not in static table, %d unknown transitions fired\n", c.Machine, len(c.Unknown))
			continue
		}
		nonExempt := c.Declared - c.Exempt
		firedNonExempt := c.Fired - (c.Exempt - len(c.ExemptUnfired))
		fmt.Fprintf(&b, "%-14s %3d/%3d fired (%5.1f%%)", c.Machine, firedNonExempt, nonExempt,
			100*float64(firedNonExempt)/float64(max(nonExempt, 1)))
		if c.Exempt > 0 {
			fmt.Fprintf(&b, ", %d exempt", c.Exempt)
		}
		if len(c.Unknown) > 0 {
			fmt.Fprintf(&b, ", %d UNKNOWN", len(c.Unknown))
		}
		b.WriteString("\n")
		for _, k := range c.Unfired {
			fmt.Fprintf(&b, "    unfired: %s\n", k)
		}
		for _, k := range c.ExemptUnfired {
			fmt.Fprintf(&b, "    unfired (exempt): %s\n", k)
		}
		for _, k := range c.Unknown {
			fmt.Fprintf(&b, "    unknown: %s\n", k)
		}
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
