// Package baddomain calls Record with a non-constant state argument
// and no //proto:states annotation on the call line — the extractor
// cannot learn the value domain and must say so.
package baddomain

import "hscsim/internal/fsm"

func fire(r *fsm.Recorder, st string) {
	r.Record("toy", st, "Load", "S")
}

var _ = fire
