// Package badattr carries a duplicate //proto: annotation on a Record
// call line — the extractor must reject it with the site's position.
package badattr

import "hscsim/internal/fsm"

func fire(r *fsm.Recorder, st string) {
	r.Record("toy", st, "Load", "S") //proto:states I,S //proto:states E
}

var _ = fire
