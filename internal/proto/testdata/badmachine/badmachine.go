// Package badmachine calls Record with a non-constant machine name —
// the extractor must reject it (tables are keyed by machine, so the
// name has to be statically known).
package badmachine

import "hscsim/internal/fsm"

func fire(r *fsm.Recorder, who string) {
	r.Record(who, "I", "Load", "S")
}

var _ = fire
