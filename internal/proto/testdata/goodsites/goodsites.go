// Package goodsites is a well-formed extraction target: one fully
// constant Record call and one whose domains come from //proto:
// annotations, with guards and message attributes.
package goodsites

import "hscsim/internal/fsm"

func fire(r *fsm.Recorder, st, ev string) {
	r.Record("toy", "I", "Load", "S")
	r.Record("toy", st, ev, "I") //proto:states S,E //proto:events Evict,Inval //proto:actions drop line //proto:when LLCWriteBack //proto:unless UseL3OnWT //proto:emits VicClean //proto:consumes PrbInv
}

var _ = fire
