package proto

import (
	"strings"
	"testing"

	"hscsim/internal/fsm"
	"hscsim/internal/verify"
)

// extractRepo loads and extracts the real controller sources once per
// test binary.
var repoTable *Table

func repoExtract(t *testing.T) *Table {
	t.Helper()
	if testing.Short() {
		t.Skip("loads and type-checks the controller packages")
	}
	if repoTable == nil {
		tbl, err := Extract(".")
		if err != nil {
			t.Fatal(err)
		}
		repoTable = tbl
	}
	return repoTable
}

// TestRepoTablePassesStaticCheck is the enforcement test: the
// transition table extracted from the real controllers must satisfy
// the spec — every reachable (state, event) cell handled, no
// unreachable arms, paper-exact variant deltas.
func TestRepoTablePassesStaticCheck(t *testing.T) {
	tbl := repoExtract(t)
	for _, p := range CheckStatic(tbl) {
		t.Errorf("%s", p)
	}
}

// TestRepoTableShape pins the headline numbers: all eight machines
// extracted, with the expected transition counts per machine.
func TestRepoTableShape(t *testing.T) {
	tbl := repoExtract(t)
	want := map[string]int{
		"cpu.l2":        34,
		"dir.llc":       11,
		"dir.ro":        4,
		"dir.stateless": 10,
		"dir.tracked":   39,
		"dma.engine":    4,
		"gpu.tcc":       29,
		"gpu.wave":      6,
	}
	if len(tbl.Machines) != len(want) {
		t.Errorf("extracted %d machines, want %d", len(tbl.Machines), len(want))
	}
	for name, n := range want {
		m := tbl.Machine(name)
		if m == nil {
			t.Errorf("machine %s not extracted", name)
			continue
		}
		if len(m.Entries) != n {
			t.Errorf("%s: %d transitions extracted, want %d", name, len(m.Entries), n)
			for _, e := range m.Entries {
				t.Logf("  %s (%s)", e.TKey, siteList(e))
			}
		}
	}
}

// TestVariantTablesMatchVerify pins the spec's variant list to
// verify.Variants so the two cannot drift.
func TestVariantTablesMatchVerify(t *testing.T) {
	vs := verify.Variants()
	tables := LLCVariantTables()
	if len(vs) != len(tables) {
		t.Fatalf("spec has %d variants, verify.Variants has %d", len(tables), len(vs))
	}
	for i, v := range vs {
		if tables[i].Opts != v {
			t.Errorf("variant %d: spec opts %+v != verify.Variants opts %+v", i, tables[i].Opts, v)
		}
	}
}

func TestExpand(t *testing.T) {
	cases := []struct {
		site Site
		want []TKey
		err  string
	}{
		{ // zip
			site: Site{States: []string{"S", "O"}, Events: []string{"Load"}, Nexts: []string{"S", "O"}},
			want: []TKey{{"S", "Load", "S"}, {"O", "Load", "O"}},
		},
		{ // singleton next fans states
			site: Site{States: []string{"S", "E"}, Events: []string{"Evict"}, Nexts: []string{"WB"}},
			want: []TKey{{"S", "Evict", "WB"}, {"E", "Evict", "WB"}},
		},
		{ // singleton state fans nexts
			site: Site{States: []string{"I"}, Events: []string{"Fill"}, Nexts: []string{"S", "E", "M"}},
			want: []TKey{{"I", "Fill", "S"}, {"I", "Fill", "E"}, {"I", "Fill", "M"}},
		},
		{ // multiple events multiply
			site: Site{States: []string{"WB"}, Events: []string{"Load", "Store"}, Nexts: []string{"WB"}},
			want: []TKey{{"WB", "Load", "WB"}, {"WB", "Store", "WB"}},
		},
		{ // ambiguous
			site: Site{States: []string{"A", "B", "C"}, Events: []string{"E"}, Nexts: []string{"X", "Y"}, Pos: "f.go:1"},
			err:  "ambiguous",
		},
	}
	for i, c := range cases {
		got, err := expand(c.site)
		if c.err != "" {
			if err == nil || !strings.Contains(err.Error(), c.err) {
				t.Errorf("case %d: err = %v, want %q", i, err, c.err)
			}
			continue
		}
		if err != nil {
			t.Errorf("case %d: %v", i, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("case %d: got %v, want %v", i, got, c.want)
			continue
		}
		for j := range got {
			if got[j] != c.want[j] {
				t.Errorf("case %d key %d: got %v, want %v", i, j, got[j], c.want[j])
			}
		}
	}
}

func TestParseAttrs(t *testing.T) {
	attrs, err := parseAttrs("// x //proto:states S,E //proto:next M //proto:actions install upgrade grant //proto:when LLCWriteBack //proto:unless UseL3OnWT")
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]string{
		"states":  "S,E",
		"next":    "M",
		"actions": "install upgrade grant",
		"when":    "LLCWriteBack",
		"unless":  "UseL3OnWT",
	} {
		if attrs[key] != want {
			t.Errorf("attrs[%q] = %q, want %q", key, attrs[key], want)
		}
	}
	if _, err := parseAttrs("//proto:states A //proto:states B"); err == nil {
		t.Error("duplicate key not rejected")
	}
	if _, err := parseAttrs("//proto:bogus x"); err == nil {
		t.Error("unknown key not rejected")
	}
	if _, err := parseAttrs("//proto:states"); err == nil {
		t.Error("empty value not rejected")
	}
}

func TestGuardEvaluation(t *testing.T) {
	e := &Entry{Guards: []Guard{
		{Require: []string{"LLCWriteBack"}},
		{Require: []string{"NoWBCleanVicToMem"}, Forbid: []string{"NoWBCleanVicToLLC", "LLCWriteBack"}},
	}}
	if e.ActiveUnder(map[string]bool{}) {
		t.Error("active with no options set")
	}
	if !e.ActiveUnder(map[string]bool{"LLCWriteBack": true}) {
		t.Error("inactive under LLCWriteBack")
	}
	if !e.ActiveUnder(map[string]bool{"NoWBCleanVicToMem": true}) {
		t.Error("inactive under NoWBCleanVicToMem")
	}
	if e.ActiveUnder(map[string]bool{"NoWBCleanVicToMem": true, "NoWBCleanVicToLLC": true}) {
		t.Error("active although the earlier switch arm wins")
	}
	if !e.EnabledBy("LLCWriteBack") || !e.EnabledBy("NoWBCleanVicToMem") {
		t.Error("EnabledBy misses a required option")
	}
	if e.EnabledBy("NoWBCleanVicToLLC") {
		t.Error("EnabledBy counts a forbidden option")
	}
}

// TestCrossCheck exercises the static-vs-dynamic comparison on a
// synthetic table and recorder.
func TestCrossCheck(t *testing.T) {
	tbl := &Table{Machines: []*Machine{{
		Name: "dma.engine",
		Entries: []*Entry{
			{TKey: TKey{State: "-", Event: "Rd", Next: "-"}},
			{TKey: TKey{State: "-", Event: "Wr", Next: "-"}},
		},
	}}}
	rec := fsm.NewRecorder()
	rec.Record("dma.engine", "-", "Rd", "-")
	rec.Record("dma.engine", "-", "Flush", "-") // not declared
	rec.Record("dir.bogus", "-", "X", "-")      // unknown machine

	cov := CrossCheck(tbl, rec)
	if len(cov) != 2 {
		t.Fatalf("got %d coverage entries, want 2", len(cov))
	}
	dma := cov[0]
	if dma.Machine != "dma.engine" || dma.Fired != 1 || dma.Declared != 2 {
		t.Errorf("dma coverage = %+v", dma)
	}
	if len(dma.Unfired) != 1 || dma.Unfired[0].Event != "Wr" {
		t.Errorf("unfired = %v, want the Wr transition", dma.Unfired)
	}
	if len(dma.Unknown) != 1 || dma.Unknown[0].Event != "Flush" {
		t.Errorf("unknown = %v, want the Flush transition", dma.Unknown)
	}
	if cov[1].Machine != "dir.bogus" || len(cov[1].Unknown) != 1 {
		t.Errorf("bogus machine coverage = %+v", cov[1])
	}

	percent, problems := Summarize(cov, 95)
	if percent != 50 {
		t.Errorf("percent = %v, want 50", percent)
	}
	if len(problems) != 4 {
		t.Errorf("problems = %v, want unfired + 2 unknown + below-bar", problems)
	}
	if _, problems := Summarize(cov, 40); len(problems) != 2 {
		t.Errorf("above the bar, problems = %v, want only the 2 extraction gaps", problems)
	}
}

// TestStaticCheckCatchesDefects mutates a healthy synthetic table and
// spec interaction to prove each checker direction fires.
func TestStaticCheckCatchesDefects(t *testing.T) {
	tbl := repoExtract(t)

	// Removing a handled transition must trip exhaustiveness.
	m := tbl.Machine("dma.engine")
	saved := m.Entries
	m.Entries = m.Entries[1:]
	found := false
	for _, p := range CheckStatic(tbl) {
		if strings.Contains(p, "no handler") && strings.Contains(p, "dma.engine") {
			found = true
		}
	}
	m.Entries = saved
	if !found {
		t.Error("removing a dma.engine transition not reported as a hole")
	}

	// An out-of-domain transition must be flagged as unreachable.
	m.Entries = append(m.Entries, &Entry{TKey: TKey{State: "-", Event: "Bogus", Next: "-"}, Sites: []string{"x.go:1"}})
	found = false
	for _, p := range CheckStatic(tbl) {
		if strings.Contains(p, "Bogus") {
			found = true
		}
	}
	m.Entries = m.Entries[:len(m.Entries)-1]
	if !found {
		t.Error("out-of-domain transition not reported")
	}
}
