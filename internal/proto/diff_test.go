package proto

import (
	"strings"
	"testing"
)

func diffFixture() *Table {
	return &Table{Machines: []*Machine{
		{Name: "dir.cpu", Entries: []*Entry{
			{TKey: TKey{State: "I", Event: "RdBlk", Next: "S"}, Actions: []string{"fill"}, Guards: []Guard{{}}},
			{TKey: TKey{State: "S", Event: "RdBlkM", Next: "M"}, Actions: []string{"inval sharers"}, Guards: []Guard{{}}},
			{TKey: TKey{State: "M", Event: "Probe", Next: "O"}, Actions: []string{"fwd"}, Guards: []Guard{{Require: []string{"llcWriteBack"}}}},
		}},
		{Name: "dir.llc", Entries: []*Entry{
			{TKey: TKey{State: "V", Event: "Evict", Next: "I"}, Actions: []string{"wb"}, Guards: []Guard{{}}},
		}},
	}}
}

// TestDiffRoundTrip: both baseline formats the toolkit emits must parse
// back into exactly the arms they rendered, so a no-change diff is
// empty in both directions.
func TestDiffRoundTrip(t *testing.T) {
	tbl := diffFixture()
	arms := tbl.Arms()

	fromMD, err := ParseBaseline([]byte(tbl.Markdown()))
	if err != nil {
		t.Fatal(err)
	}
	if d := DiffArms(fromMD, arms); len(d) != 0 {
		t.Fatalf("markdown round-trip not identity:\n%s", FormatDiff(d))
	}

	js, err := tbl.JSON()
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := ParseBaseline(js)
	if err != nil {
		t.Fatal(err)
	}
	if d := DiffArms(fromJSON, arms); len(d) != 0 {
		t.Fatalf("JSON round-trip not identity:\n%s", FormatDiff(d))
	}
}

// TestDiffReportsArmDeltas: an added arm, a removed arm, and a reguarded
// arm each show up as exactly one reviewable delta.
func TestDiffReportsArmDeltas(t *testing.T) {
	baseline := diffFixture().Arms()

	next := diffFixture()
	cpu := next.Machine("dir.cpu")
	// Remove (S, RdBlkM) -> M, add (S, RdBlkM) -> O, reguard (M, Probe).
	cpu.Entries[1] = &Entry{TKey: TKey{State: "S", Event: "RdBlkM", Next: "O"}, Actions: []string{"fwd owner"}, Guards: []Guard{{}}}
	cpu.Entries[2].Guards = []Guard{{}}

	deltas := DiffArms(baseline, next.Arms())
	if len(deltas) != 3 {
		t.Fatalf("got %d deltas, want 3:\n%s", len(deltas), FormatDiff(deltas))
	}
	kinds := map[string]int{}
	for _, d := range deltas {
		kinds[d.Kind]++
	}
	if kinds["added"] != 1 || kinds["removed"] != 1 || kinds["changed"] != 1 {
		t.Fatalf("kinds = %v, want one of each", kinds)
	}

	out := FormatDiff(deltas)
	for _, want := range []string{
		"+ (S, RdBlkM) -> O",
		"- (S, RdBlkM) -> M",
		"~ (M, Probe) -> O  guard: llcWriteBack -> always",
		"1 added, 1 removed, 1 changed",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff output missing %q:\n%s", want, out)
		}
	}
	// The unchanged dir.llc machine must not appear.
	if strings.Contains(out, "dir.llc") {
		t.Fatalf("diff lists an unchanged machine:\n%s", out)
	}
}

// TestDiffRejectsGarbage: a baseline with no table rows is a usage
// error, not an empty diff.
func TestDiffRejectsGarbage(t *testing.T) {
	if _, err := ParseBaseline([]byte("not a baseline\n")); err == nil {
		t.Fatal("garbage baseline parsed")
	}
	if _, err := ParseBaseline([]byte("{broken json")); err == nil {
		t.Fatal("broken JSON parsed")
	}
}

// TestRepoTablesRoundTripThroughDiff pins the real extracted tables:
// TABLES.md as committed must diff clean against the extraction it was
// generated from.
func TestRepoTablesRoundTripThroughDiff(t *testing.T) {
	tbl := repoExtract(t)
	fromMD, err := ParseBaseline([]byte(tbl.Markdown()))
	if err != nil {
		t.Fatal(err)
	}
	if d := DiffArms(fromMD, tbl.Arms()); len(d) != 0 {
		t.Fatalf("repo tables do not round-trip:\n%s", FormatDiff(d))
	}
}
