package proto

import (
	"strings"
	"testing"
)

// The extractor's error paths, driven through real (compiled) testdata
// packages so the failures exercise the same load/type-check/resolve
// pipeline the controllers go through.

const protoTestdata = "hscsim/internal/proto/testdata/"

func TestExtractSitesRejectsNonConstantMachine(t *testing.T) {
	_, err := ExtractSites("../..", protoTestdata+"badmachine")
	if err == nil {
		t.Fatal("non-constant machine argument accepted")
	}
	if !strings.Contains(err.Error(), "machine argument must be a string constant") {
		t.Fatalf("wrong error: %v", err)
	}
	if !strings.Contains(err.Error(), "badmachine.go:") {
		t.Fatalf("error does not carry the site position: %v", err)
	}
}

func TestExtractSitesRejectsUnannotatedDomain(t *testing.T) {
	_, err := ExtractSites("../..", protoTestdata+"baddomain")
	if err == nil {
		t.Fatal("non-constant state argument without annotation accepted")
	}
	for _, want := range []string{"states argument is not constant", "//proto:states", "baddomain.go:"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error lacks %q: %v", want, err)
		}
	}
}

func TestExtractSitesRejectsDuplicateAttr(t *testing.T) {
	_, err := ExtractSites("../..", protoTestdata+"badattr")
	if err == nil {
		t.Fatal("duplicate //proto:states annotation accepted")
	}
	for _, want := range []string{"duplicate //proto:states", "badattr.go:"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error lacks %q: %v", want, err)
		}
	}
}

func TestExtractSitesRejectsUnknownPackage(t *testing.T) {
	if _, err := ExtractSites("../..", protoTestdata+"nosuchpkg"); err == nil {
		t.Fatal("unknown package pattern accepted")
	}
}

func TestExtractSitesResolvesAnnotatedDomains(t *testing.T) {
	sites, err := ExtractSites("../..", protoTestdata+"goodsites")
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 2 {
		t.Fatalf("extracted %d sites, want 2: %+v", len(sites), sites)
	}
	c, a := sites[0], sites[1]
	if c.Machine != "toy" || len(c.States) != 1 || c.States[0] != "I" ||
		len(c.Events) != 1 || c.Events[0] != "Load" || len(c.Nexts) != 1 || c.Nexts[0] != "S" {
		t.Errorf("constant site resolved wrong: %+v", c)
	}
	if got := strings.Join(a.States, ","); got != "S,E" {
		t.Errorf("annotated states = %q, want S,E", got)
	}
	if got := strings.Join(a.Events, ","); got != "Evict,Inval" {
		t.Errorf("annotated events = %q, want Evict,Inval", got)
	}
	if a.Actions != "drop line" {
		t.Errorf("actions = %q, want %q", a.Actions, "drop line")
	}
	if strings.Join(a.When, ",") != "LLCWriteBack" || strings.Join(a.Unless, ",") != "UseL3OnWT" {
		t.Errorf("guards resolved wrong: when=%v unless=%v", a.When, a.Unless)
	}
	if strings.Join(a.Emits, ",") != "VicClean" || strings.Join(a.Consumes, ",") != "PrbInv" {
		t.Errorf("message attrs resolved wrong: emits=%v consumes=%v", a.Emits, a.Consumes)
	}
	if !strings.Contains(c.Pos, "goodsites.go:") {
		t.Errorf("site position missing: %q", c.Pos)
	}
}
