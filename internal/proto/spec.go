package proto

import (
	"sort"

	"hscsim/internal/core"
)

// MachineSpec is the handwritten ground truth for one controller state
// machine: its state/event/next-state domains, which (state, event)
// cells are reachable, and a justification for every cell that is not.
// The static check (check.go) holds the extracted table to this spec in
// both directions: every reachable cell handled, no handler outside the
// reachable set.
type MachineSpec struct {
	Name   string
	States []string
	Events []string
	Nexts  []string

	// Reachable lists every (state, event) cell the controller can
	// observe. Each must be covered by at least one extracted
	// transition unless waived.
	Reachable []Pair

	// Impossible justifies each cell of States×Events absent from
	// Reachable. Reachable and Impossible must exactly partition the
	// cross product.
	Impossible map[Pair]string

	// Waived excuses reachable cells from static exhaustiveness, with
	// a justification. A waiver for a cell the extractor does find is a
	// stale waiver and fails the check.
	Waived map[Pair]string

	// CoverageExempt excuses declared transitions from the dynamic
	// firing requirement (coverage.go), with a justification. Exempt
	// transitions still appear in the table and are still reported by
	// name when unfired.
	CoverageExempt map[TKey]string
}

// KnownOptions are the core.Options field names a //proto:when or
// //proto:unless clause may reference.
var KnownOptions = map[string]bool{
	"EarlyDirtyResponse":      true,
	"NoWBCleanVicToMem":       true,
	"NoWBCleanVicToLLC":       true,
	"LLCWriteBack":            true,
	"UseL3OnWT":               true,
	"ReadOnlyElision":         true,
	"KeepDirtySharersOnEvict": true,
}

// OptionSet converts core.Options to the option-name set guards are
// evaluated against.
func OptionSet(o core.Options) map[string]bool {
	return map[string]bool{
		"EarlyDirtyResponse":      o.EarlyDirtyResponse,
		"NoWBCleanVicToMem":       o.NoWBCleanVicToMem,
		"NoWBCleanVicToLLC":       o.NoWBCleanVicToLLC,
		"LLCWriteBack":            o.LLCWriteBack,
		"UseL3OnWT":               o.UseL3OnWT,
		"ReadOnlyElision":         o.ReadOnlyElision,
		"KeepDirtySharersOnEvict": o.KeepDirtySharersOnEvict,
	}
}

// LLCOptionDeltas is the paper's per-optimization table delta for the
// LLC write-policy machine (dir.llc): enabling the option adds exactly
// these transitions. Only dir.llc may carry option guards at all —
// §III-A changes response timing, not the table, and §IV selects
// between dir.stateless and dir.tracked rather than gating transitions.
var LLCOptionDeltas = map[string][]TKey{
	// §III-C: victims and (with UseL3OnWT) write-throughs leave a dirty
	// LLC line instead of writing memory.
	"LLCWriteBack": {
		{State: "-", Event: "BackInval", Next: "llc-dirty"},
		{State: "-", Event: "VicClean", Next: "llc"},
		{State: "-", Event: "VicDirty", Next: "llc-dirty"},
		{State: "-", Event: "WT", Next: "llc-dirty"},
	},
	// §III-B: clean victims stop writing memory.
	"NoWBCleanVicToMem": {
		{State: "-", Event: "VicClean", Next: "llc"},
	},
	// §III-B1: clean victims are dropped entirely.
	"NoWBCleanVicToLLC": {
		{State: "-", Event: "VicClean", Next: "drop"},
	},
	// gem5's useL3OnWT: write-throughs land in the LLC.
	"UseL3OnWT": {
		{State: "-", Event: "WT", Next: "llc-dirty"},
		{State: "-", Event: "WT", Next: "llc+mem"},
	},
}

// LLCVariantTable is the expected active dir.llc transition set for
// one protocol variant — the per-variant table diff of the paper.
type LLCVariantTable struct {
	Opts   core.Options
	Active []TKey
}

// LLCVariantTables returns the expected dir.llc tables for the six
// paper variants (mirroring verify.Variants; a test cross-checks the
// two). §III-A (EarlyDirtyResponse) changes no table entries, so the
// first two variants are identical here.
func LLCVariantTables() []LLCVariantTable {
	baseline := []TKey{
		{State: "-", Event: "BackInval", Next: "llc+mem"},
		{State: "-", Event: "DMAWr", Next: "mem"},
		{State: "-", Event: "VicClean", Next: "llc+mem"},
		{State: "-", Event: "VicDirty", Next: "llc+mem"},
		{State: "-", Event: "WT", Next: "mem"},
	}
	noWBClean := []TKey{
		{State: "-", Event: "BackInval", Next: "llc+mem"},
		{State: "-", Event: "DMAWr", Next: "mem"},
		{State: "-", Event: "VicClean", Next: "drop"},
		{State: "-", Event: "VicDirty", Next: "llc+mem"},
		{State: "-", Event: "WT", Next: "mem"},
	}
	llcWBUseL3 := []TKey{
		{State: "-", Event: "BackInval", Next: "llc-dirty"},
		{State: "-", Event: "DMAWr", Next: "mem"},
		{State: "-", Event: "VicClean", Next: "llc"},
		{State: "-", Event: "VicDirty", Next: "llc-dirty"},
		{State: "-", Event: "WT", Next: "llc-dirty"},
	}
	// The tracking variants keep the write-back LLC but not useL3OnWT:
	// write-throughs bypass to memory.
	llcWBTracked := []TKey{
		{State: "-", Event: "BackInval", Next: "llc-dirty"},
		{State: "-", Event: "DMAWr", Next: "mem"},
		{State: "-", Event: "VicClean", Next: "llc"},
		{State: "-", Event: "VicDirty", Next: "llc-dirty"},
		{State: "-", Event: "WT", Next: "mem"},
	}
	return []LLCVariantTable{
		{core.Options{}, baseline},
		{core.Options{EarlyDirtyResponse: true}, baseline},
		{core.Options{EarlyDirtyResponse: true, NoWBCleanVicToMem: true, NoWBCleanVicToLLC: true}, noWBClean},
		{core.Options{EarlyDirtyResponse: true, LLCWriteBack: true, UseL3OnWT: true}, llcWBUseL3},
		{core.Options{EarlyDirtyResponse: true, LLCWriteBack: true, Tracking: core.TrackOwner}, llcWBTracked},
		{core.Options{EarlyDirtyResponse: true, LLCWriteBack: true, Tracking: core.TrackOwnerSharers}, llcWBTracked},
	}
}

// cells builds the (state, event) pairs of one state row.
func cells(state string, events ...string) []Pair {
	out := make([]Pair, len(events))
	for i, ev := range events {
		out[i] = Pair{State: state, Event: ev}
	}
	return out
}

func rows(rs ...[]Pair) []Pair {
	var out []Pair
	for _, r := range rs {
		out = append(out, r...)
	}
	return out
}

// impossible justifies each (state, event) in the list with one reason.
func impossible(m map[Pair]string, reason string, ps ...Pair) map[Pair]string {
	if m == nil {
		m = make(map[Pair]string)
	}
	for _, p := range ps {
		m[p] = reason
	}
	return m
}

// Specs returns the spec for every instrumented machine, sorted by
// name.
func Specs() []*MachineSpec {
	specs := []*MachineSpec{
		cpuL2Spec(),
		dmaSpec(),
		dirLLCSpec(),
		dirROSpec(),
		dirStatelessSpec(),
		dirTrackedSpec(),
		gpuTCCSpec(),
		gpuWaveSpec(),
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].Name < specs[j].Name })
	return specs
}

// SpecFor returns the named machine's spec, or nil.
func SpecFor(name string) *MachineSpec {
	for _, s := range Specs() {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// cpuL2Spec is the MOESI CorePair L2 (internal/corepair). The "WB"
// pseudo-state is the victim buffer: the line left the array with a
// Vic* in flight and its WBAck pending.
func cpuL2Spec() *MachineSpec {
	s := &MachineSpec{
		Name:   "cpu.l2",
		States: []string{"I", "S", "E", "O", "M", "WB"},
		Events: []string{"Load", "Store", "Fill", "Evict", "WBAck", "PrbInv", "PrbDowngrade"},
		Nexts:  []string{"I", "S", "E", "O", "M", "WB"},
		Reachable: rows(
			cells("I", "Load", "Store", "Fill", "PrbInv", "PrbDowngrade"),
			cells("S", "Load", "Store", "Fill", "Evict", "PrbInv", "PrbDowngrade"),
			cells("E", "Load", "Store", "Evict", "PrbInv", "PrbDowngrade"),
			cells("O", "Load", "Store", "Fill", "Evict", "PrbInv", "PrbDowngrade"),
			cells("M", "Load", "Store", "Evict", "PrbInv", "PrbDowngrade"),
			cells("WB", "Load", "Store", "WBAck", "PrbInv", "PrbDowngrade"),
		),
	}
	s.Impossible = impossible(s.Impossible,
		"invalid lines are never chosen as victims",
		Pair{State: "I", Event: "Evict"})
	s.Impossible = impossible(s.Impossible,
		"a WBAck always finds its victim-buffer entry: a re-fetch of the line stalls in WB until the ack drains",
		Pair{State: "I", Event: "WBAck"}, Pair{State: "S", Event: "WBAck"},
		Pair{State: "E", Event: "WBAck"}, Pair{State: "O", Event: "WBAck"},
		Pair{State: "M", Event: "WBAck"})
	s.Impossible = impossible(s.Impossible,
		"no miss can be outstanding for a line held Exclusive/Modified; upgrade fills start from S or O",
		Pair{State: "E", Event: "Fill"}, Pair{State: "M", Event: "Fill"})
	s.Impossible = impossible(s.Impossible,
		"accesses to a line with an outstanding victim stall before issuing a miss, so no fill can arrive in WB",
		Pair{State: "WB", Event: "Fill"})
	s.Impossible = impossible(s.Impossible,
		"the victim buffer is not part of the cache array; the line cannot be victimized twice",
		Pair{State: "WB", Event: "Evict"})
	return s
}

// gpuTCCSpec is the VIPER TCC (internal/gpucache): V/D line states plus
// "-" for the point-to-point completions that never consult line state.
func gpuTCCSpec() *MachineSpec {
	s := &MachineSpec{
		Name:   "gpu.tcc",
		States: []string{"I", "V", "D", "-"},
		Events: []string{"Rd", "Wr", "Fill", "Evict", "AtomicSys", "AtomicDev", "FlushWB", "PrbInv", "PrbDowngrade", "WBAck", "AtomicResp", "FlushAck"},
		Nexts:  []string{"I", "V", "D", "-"},
		Reachable: rows(
			cells("I", "Rd", "Wr", "Fill", "AtomicSys", "AtomicDev", "PrbInv"),
			cells("V", "Rd", "Wr", "Fill", "Evict", "AtomicSys", "AtomicDev", "PrbInv"),
			cells("D", "Rd", "Wr", "Fill", "Evict", "AtomicSys", "AtomicDev", "FlushWB", "PrbInv"),
		),
		CoverageExempt: map[TKey]string{
			// A fill can observe a valid or dirty line only when a write
			// allocated the line while the read miss was outstanding —
			// a same-line read/write race the workloads rarely produce.
			{State: "V", Event: "Fill", Next: "V"}: "needs a write allocating the line while a read miss is in flight",
			{State: "D", Event: "Fill", Next: "D"}: "needs a WB_L2 write allocating the line while a read miss is in flight",
			// Unreachable by construction, kept as a defensive arm: the
			// stateless directory sends downgrades only to L2s (fn. 4)
			// and the tracked directory downgrade-probes only the owner,
			// which the TCC can never be (its reads are forced Shared
			// and it never issues RdBlkM).
			{State: "-", Event: "PrbDowngrade", Next: "-"}: "the directory never downgrade-probes the TCC; defensive ack-only arm",
		},
	}
	s.Reachable = append(s.Reachable,
		cells("-", "WBAck", "AtomicResp", "FlushAck", "PrbDowngrade")...)
	s.Impossible = impossible(s.Impossible,
		"point-to-point completions and downgrade acks never consult TCC line state; recorded state-independently under -",
		rows(
			cells("I", "WBAck", "AtomicResp", "FlushAck", "PrbDowngrade"),
			cells("V", "WBAck", "AtomicResp", "FlushAck", "PrbDowngrade"),
			cells("D", "WBAck", "AtomicResp", "FlushAck", "PrbDowngrade"),
		)...)
	s.Impossible = impossible(s.Impossible,
		"line-indexed events always observe a concrete line state",
		cells("-", "Rd", "Wr", "Fill", "Evict", "AtomicSys", "AtomicDev", "FlushWB", "PrbInv")...)
	s.Impossible = impossible(s.Impossible,
		"only valid lines are displaced by an insert",
		Pair{State: "I", Event: "Evict"})
	s.Impossible = impossible(s.Impossible,
		"the release flush only visits dirty lines",
		Pair{State: "I", Event: "FlushWB"}, Pair{State: "V", Event: "FlushWB"})
	return s
}

// gpuWaveSpec is the wavefront dispatch machine (internal/gpu): which
// cache-complex action each wave op kind triggers. Stateless.
func gpuWaveSpec() *MachineSpec {
	return &MachineSpec{
		Name:      "gpu.wave",
		States:    []string{"-"},
		Events:    []string{"VecLoad", "VecStore", "AtomicSys", "AtomicDev", "Barrier", "Compute"},
		Nexts:     []string{"-"},
		Reachable: cells("-", "VecLoad", "VecStore", "AtomicSys", "AtomicDev", "Barrier", "Compute"),
	}
}

// dirStatelessSpec is the baseline broadcast directory's request
// dispatch (internal/core, beginStateless). Stateless by construction.
func dirStatelessSpec() *MachineSpec {
	return &MachineSpec{
		Name:      "dir.stateless",
		States:    []string{"-"},
		Events:    []string{"RdBlk", "RdBlkS", "RdBlkM", "VicDirty", "VicClean", "WT", "Atomic", "Flush", "DMARd", "DMAWr"},
		Nexts:     []string{"-"},
		Reachable: cells("-", "RdBlk", "RdBlkS", "RdBlkM", "VicDirty", "VicClean", "WT", "Atomic", "Flush", "DMARd", "DMAWr"),
	}
}

// dirTrackedSpec is the §IV tracking directory (internal/core,
// tracked.go): I/S/O entry states per Table I, plus "-" for the
// state-independent release fence.
func dirTrackedSpec() *MachineSpec {
	reqEvents := []string{"RdBlk", "RdBlkS", "RdBlkM", "VicDirty", "VicClean", "WT", "Atomic", "DMARd", "DMAWr"}
	s := &MachineSpec{
		Name:   "dir.tracked",
		States: []string{"I", "S", "O", "-"},
		Events: []string{"RdBlk", "RdBlkS", "RdBlkM", "VicDirty", "VicClean", "WT", "Atomic", "Flush", "DMARd", "DMAWr"},
		Nexts:  []string{"I", "S", "O", "-"},
		Reachable: rows(
			cells("I", reqEvents...),
			cells("S", reqEvents...),
			cells("O", reqEvents...),
			cells("-", "Flush"),
		),
		CoverageExempt: map[TKey]string{
			// Superseded dirty victims need a VicDirty crossing an
			// ownership transfer; kept in the table for the race, but
			// the conformance workloads seldom line the two up.
			{State: "S", Event: "VicDirty", Next: "S"}: "needs a VicDirty crossing an ownership transfer that left the line S",
			{State: "O", Event: "VicDirty", Next: "O"}: "needs a VicDirty from a stale owner racing a new owner's RdBlkM",
			// Table I footnote g's sharers-remain branch: an entry only
			// holds sharers alongside an owner via the dirty-sharers path
			// (footnote h), which pins the owner's L2 line at M->O dirty —
			// so the owner's eventual victim is always VicDirty, never
			// VicClean. Kept as a defensive arm.
			{State: "O", Event: "VicClean", Next: "S"}: "sharers coexist with an owner only when the owner is dirty (fn. h), whose victim is VicDirty",
		},
	}
	s.Impossible = impossible(s.Impossible,
		"the release fence is line-state-independent; recorded under -",
		Pair{State: "I", Event: "Flush"}, Pair{State: "S", Event: "Flush"},
		Pair{State: "O", Event: "Flush"})
	s.Impossible = impossible(s.Impossible,
		"every other request consults the directory entry state",
		cells("-", reqEvents...)...)
	return s
}

// dirLLCSpec is the LLC write-policy machine (internal/core): what each
// write-class event leaves in the LLC and memory. The next-state column
// encodes the policy outcome, not a cache state: drop, llc (clean LLC
// line only), llc+mem (write-through), llc-dirty (deferred memory
// write), mem (memory only).
func dirLLCSpec() *MachineSpec {
	return &MachineSpec{
		Name:      "dir.llc",
		States:    []string{"-"},
		Events:    []string{"VicDirty", "VicClean", "WT", "DMAWr", "BackInval"},
		Nexts:     []string{"drop", "llc", "llc+mem", "llc-dirty", "mem"},
		Reachable: cells("-", "VicDirty", "VicClean", "WT", "DMAWr", "BackInval"),
	}
}

// dirROSpec is the §IX read-only elision path (internal/core,
// readonly.go): requests to declared read-only lines, served with no
// probes and no tracking. Write-class requests panic instead of
// transitioning, so they have no cell here.
func dirROSpec() *MachineSpec {
	return &MachineSpec{
		Name:      "dir.ro",
		States:    []string{"-"},
		Events:    []string{"RdBlk", "RdBlkS", "DMARd", "VicClean"},
		Nexts:     []string{"-"},
		Reachable: cells("-", "RdBlk", "RdBlkS", "DMARd", "VicClean"),
	}
}

// dmaSpec is the DMA engine (internal/dma). It caches nothing, so all
// events are state-independent.
func dmaSpec() *MachineSpec {
	return &MachineSpec{
		Name:      "dma.engine",
		States:    []string{"-"},
		Events:    []string{"Rd", "Wr", "Resp", "WBAck"},
		Nexts:     []string{"-"},
		Reachable: cells("-", "Rd", "Wr", "Resp", "WBAck"),
	}
}
