// Package proto statically reconstructs each controller's
// (state, event) → {next state, actions} protocol transition table from
// the simulator's source and checks it against the handwritten spec of
// reachable pairs (spec.go). The dynamic side of the same table is the
// fsm.Recorder populated at run time; coverage.go cross-checks the two:
// a transition statically declared but never fired, or fired but never
// declared, is a finding.
//
// Extraction works on the fsm.Recorder.Record call sites the
// controllers carry. Each argument is resolved to a typed string
// constant when possible; dynamic arguments (state strings computed at
// run time) must carry a trailing //proto: annotation on the call line
// enumerating the possible values:
//
//	rec.Record(machine, st.String(), "Load", st.String()) //proto:states S,E,O,M //proto:next S,E,O,M
//
// Annotation keys:
//
//	//proto:states A,B   possible values of the state argument
//	//proto:events E,F   possible values of the event argument
//	//proto:next N,M     possible values of the next-state argument
//	//proto:actions ...  free-text description of the datapath actions
//	//proto:when O1,O2   core.Options fields that must all be set for
//	                     the site to fire
//	//proto:unless O1,O2 core.Options fields any of which suppresses
//	                     the site (earlier arms of the same policy
//	                     switch)
//	//proto:emits T1,T2  msg.Type names the arm's actions may send
//	//proto:consumes T1  msg.Type names the arm retires beyond its own
//	                     event message (e.g. replayed queued requests)
//
// When states and next have the same length they are zipped pairwise;
// a singleton on either side fans out against the other. Anything else
// is an extraction error: the annotation is ambiguous.
package proto

import (
	"fmt"
	"sort"
	"strings"

	"hscsim/internal/fsm"
)

// Site is one fsm.Recorder.Record call site with every argument
// resolved to its domain of possible string values.
type Site struct {
	Machine  string
	States   []string
	Events   []string
	Nexts    []string
	Actions  string
	When     []string // options that must all be set for the site to fire
	Unless   []string // options any of which suppresses the site
	Emits    []string // msg.Type names the arm's actions may send
	Consumes []string // msg.Type names the arm retires beyond its event
	Pos      string   // file:line
}

// TKey identifies one transition within a machine.
type TKey struct {
	State string `json:"state"`
	Event string `json:"event"`
	Next  string `json:"next"`
}

func (k TKey) String() string {
	return fmt.Sprintf("(%s, %s) -> %s", k.State, k.Event, k.Next)
}

// Pair is a (state, event) cell of a machine's table.
type Pair struct {
	State string `json:"state"`
	Event string `json:"event"`
}

func (p Pair) String() string { return fmt.Sprintf("(%s, %s)", p.State, p.Event) }

// Guard is one site's option gate: the site can fire only when every
// option in Require is set and no option in Forbid is set. The zero
// Guard is unconditional.
type Guard struct {
	Require []string `json:"require,omitempty"`
	Forbid  []string `json:"forbid,omitempty"`
}

// Active reports whether the guard admits the option set.
func (g Guard) Active(enabled map[string]bool) bool {
	for _, o := range g.Require {
		if !enabled[o] {
			return false
		}
	}
	for _, o := range g.Forbid {
		if enabled[o] {
			return false
		}
	}
	return true
}

func (g Guard) String() string {
	var parts []string
	if len(g.Require) > 0 {
		parts = append(parts, strings.Join(g.Require, "+"))
	}
	for _, o := range g.Forbid {
		parts = append(parts, "!"+o)
	}
	if len(parts) == 0 {
		return "always"
	}
	return strings.Join(parts, " ")
}

// Entry is one transition of a machine's extracted table, merged over
// every site that can fire it.
type Entry struct {
	TKey
	Actions []string `json:"actions,omitempty"`
	Guards  []Guard  `json:"guards"` // site guards (disjunction)
	Sites   []string `json:"sites"`
	// Emits lists the msg.Type names the arm's actions may put on the
	// wire; Consumes lists the types the arm retires beyond the message
	// that is its own event (e.g. a queued victim replayed by a fill).
	// Both come from //proto:emits / //proto:consumes annotations and
	// feed the static safety analyses (internal/protocheck).
	Emits    []string `json:"emits,omitempty"`
	Consumes []string `json:"consumes,omitempty"`
}

// ActiveUnder reports whether the transition can fire under the given
// option set (some contributing site's guard admits it).
func (e *Entry) ActiveUnder(enabled map[string]bool) bool {
	for _, g := range e.Guards {
		if g.Active(enabled) {
			return true
		}
	}
	return false
}

// EnabledBy reports whether some site requires the option, i.e. the
// transition is part of the option's table delta.
func (e *Entry) EnabledBy(option string) bool {
	for _, g := range e.Guards {
		for _, o := range g.Require {
			if o == option {
				return true
			}
		}
	}
	return false
}

// Machine is one controller's extracted transition table.
type Machine struct {
	Name    string   `json:"machine"`
	Entries []*Entry `json:"entries"`
}

// Entry returns the entry for the transition, or nil.
func (m *Machine) Entry(k TKey) *Entry {
	for _, e := range m.Entries {
		if e.TKey == k {
			return e
		}
	}
	return nil
}

// Pairs returns the distinct (state, event) cells the table handles, in
// sorted order.
func (m *Machine) Pairs() []Pair {
	seen := make(map[Pair]bool)
	var out []Pair
	for _, e := range m.Entries {
		p := Pair{e.State, e.Event}
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].State != out[j].State {
			return out[i].State < out[j].State
		}
		return out[i].Event < out[j].Event
	})
	return out
}

// Table is the full extracted transition table, one machine per
// instrumented controller state machine.
type Table struct {
	Machines []*Machine `json:"machines"`
}

// Machine returns the named machine's table, or nil.
func (t *Table) Machine(name string) *Machine {
	for _, m := range t.Machines {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// Transitions returns every (machine, transition) of the table in
// sorted order, as fsm.Transitions for the dynamic cross-check.
func (t *Table) Transitions() []fsm.Transition {
	var out []fsm.Transition
	for _, m := range t.Machines {
		for _, e := range m.Entries {
			out = append(out, fsm.Transition{
				Machine: m.Name, State: e.State, Event: e.Event, Next: e.Next,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// expand enumerates the site's transitions. States and nexts of equal
// length are zipped; a singleton fans out; anything else is ambiguous.
func expand(s Site) ([]TKey, error) {
	if len(s.States) == 0 || len(s.Events) == 0 || len(s.Nexts) == 0 {
		return nil, fmt.Errorf("%s: empty state/event/next domain", s.Pos)
	}
	var pairs [][2]string
	switch {
	case len(s.States) == len(s.Nexts):
		for i := range s.States {
			pairs = append(pairs, [2]string{s.States[i], s.Nexts[i]})
		}
	case len(s.Nexts) == 1:
		for _, st := range s.States {
			pairs = append(pairs, [2]string{st, s.Nexts[0]})
		}
	case len(s.States) == 1:
		for _, nx := range s.Nexts {
			pairs = append(pairs, [2]string{s.States[0], nx})
		}
	default:
		return nil, fmt.Errorf("%s: ambiguous annotation: %d states vs %d next states (need equal, or a singleton side)",
			s.Pos, len(s.States), len(s.Nexts))
	}
	var out []TKey
	for _, ev := range s.Events {
		for _, p := range pairs {
			out = append(out, TKey{State: p[0], Event: ev, Next: p[1]})
		}
	}
	return out, nil
}

// Build merges extracted sites into per-machine tables.
func Build(sites []Site) (*Table, error) {
	machines := make(map[string]map[TKey]*Entry)
	for _, s := range sites {
		keys, err := expand(s)
		if err != nil {
			return nil, err
		}
		byKey := machines[s.Machine]
		if byKey == nil {
			byKey = make(map[TKey]*Entry)
			machines[s.Machine] = byKey
		}
		g := Guard{Require: s.When, Forbid: s.Unless}
		for _, k := range keys {
			e := byKey[k]
			if e == nil {
				e = &Entry{TKey: k}
				byKey[k] = e
			}
			if s.Actions != "" && !contains(e.Actions, s.Actions) {
				e.Actions = append(e.Actions, s.Actions)
			}
			for _, em := range s.Emits {
				if !contains(e.Emits, em) {
					e.Emits = append(e.Emits, em)
				}
			}
			for _, cn := range s.Consumes {
				if !contains(e.Consumes, cn) {
					e.Consumes = append(e.Consumes, cn)
				}
			}
			e.Guards = append(e.Guards, g)
			if !contains(e.Sites, s.Pos) {
				e.Sites = append(e.Sites, s.Pos)
			}
		}
	}

	t := &Table{}
	names := make([]string, 0, len(machines))
	for name := range machines {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := &Machine{Name: name}
		for _, e := range machines[name] {
			sort.Strings(e.Actions)
			sort.Strings(e.Sites)
			sort.Strings(e.Emits)
			sort.Strings(e.Consumes)
			m.Entries = append(m.Entries, e)
		}
		sort.Slice(m.Entries, func(i, j int) bool {
			a, b := m.Entries[i], m.Entries[j]
			if a.State != b.State {
				return a.State < b.State
			}
			if a.Event != b.Event {
				return a.Event < b.Event
			}
			return a.Next < b.Next
		})
		t.Machines = append(t.Machines, m)
	}
	return t, nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
