#!/usr/bin/env bash
# fleet_smoke.sh — end-to-end smoke test of the distributed sweep
# fabric with the REAL binaries: three hscserve processes form a
# loopback fleet, hscsweep submits one batch sweep, and the script
# proves
#
#   1. the fleet's per-cell results are byte-identical to an in-process
#      run of the same sweep (content-addressed determinism end to end),
#   2. a repeat of the sweep — submitted to a DIFFERENT node — is served
#      ≥90% from the shared cache tier without re-simulating,
#   3. cross-peer cache reads actually traverse the peer tier
#      (fleet.peer_hits on /metrics).
#
# Used by CI on every push; runnable locally with no arguments.
set -euo pipefail

BENCH=${BENCH:-bs}
SCALE=${SCALE:-1}
BASE_PORT=${BASE_PORT:-18091}
WORK=$(mktemp -d)
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$WORK/hscserve" ./cmd/hscserve
go build -o "$WORK/hscsweep" ./cmd/hscsweep

echo "== in-process reference sweep ($BENCH, scale $SCALE)"
"$WORK/hscsweep" -bench "$BENCH" -scale "$SCALE" -dump "$WORK/ref.tsv" >/dev/null

echo "== starting 3-node loopback fleet"
URLS=()
for i in 0 1 2; do
  URLS+=("http://127.0.0.1:$((BASE_PORT + i))")
done
for i in 0 1 2; do
  peers=""
  for j in 0 1 2; do
    if [ "$i" != "$j" ]; then
      peers="${peers:+$peers,}${URLS[$j]}"
    fi
  done
  "$WORK/hscserve" -addr "127.0.0.1:$((BASE_PORT + i))" \
    -self "${URLS[$i]}" -peers "$peers" -workers 2 &
  PIDS+=($!)
done
for u in "${URLS[@]}"; do
  for _ in $(seq 1 50); do
    curl -sf "$u/healthz" >/dev/null && break
    sleep 0.2
  done
  curl -sf "$u/healthz" >/dev/null || { echo "node $u never came up" >&2; exit 1; }
done

echo "== batch sweep via ${URLS[0]}"
"$WORK/hscsweep" -server "${URLS[0]}" -bench "$BENCH" -scale "$SCALE" \
  -dump "$WORK/fleet.tsv" | tee "$WORK/run1.out" | tail -1

echo "== byte-identity: fleet vs in-process"
cmp "$WORK/ref.tsv" "$WORK/fleet.tsv" || {
  echo "FAIL: fleet results differ from the in-process run" >&2
  exit 1
}

echo "== repeat sweep via ${URLS[1]} (must be served from the shared cache)"
"$WORK/hscsweep" -server "${URLS[1]}" -bench "$BENCH" -scale "$SCALE" \
  -dump "$WORK/fleet2.tsv" | tee "$WORK/run2.out" | tail -1
cmp "$WORK/ref.tsv" "$WORK/fleet2.tsv" || {
  echo "FAIL: repeat-sweep results differ" >&2
  exit 1
}
summary=$(grep -E '^fleet: ' "$WORK/run2.out" | tail -1)
total=$(echo "$summary" | sed -n 's/^fleet: \([0-9]*\) cells.*/\1/p')
cached=$(echo "$summary" | sed -n 's/.* \([0-9]*\) served from cache.*/\1/p')
if [ -z "$total" ] || [ -z "$cached" ]; then
  echo "FAIL: could not parse sweep summary: $summary" >&2
  exit 1
fi
if [ $((cached * 10)) -lt $((total * 9)) ]; then
  echo "FAIL: repeat sweep only $cached/$total cells cached (<90%)" >&2
  exit 1
fi
echo "repeat sweep: $cached/$total cells served from cache"

echo "== cross-peer read-through on ${URLS[2]}"
# Fetch every cell's result from node 3; cells homed elsewhere make it
# read through the peer cache tier.
while IFS=$'\t' read -r hash _; do
  curl -sf "${URLS[2]}/jobs/$hash/result" >/dev/null || {
    echo "FAIL: node 3 could not serve result $hash" >&2
    exit 1
  }
done < "$WORK/ref.tsv"
peer_hits=$(curl -sf "${URLS[2]}/metrics" | awk '$1 == "fleet.peer_hits" {print $2}')
if [ -z "$peer_hits" ] || [ "$peer_hits" -eq 0 ]; then
  echo "FAIL: node 3 shows no fleet.peer_hits after remote reads" >&2
  curl -sf "${URLS[2]}/metrics" >&2 || true
  exit 1
fi
echo "node 3 peer cache hits: $peer_hits"

echo "PASS: fleet smoke (byte-identical, cache-served repeat, cross-peer reads)"
