module hscsim

go 1.22
