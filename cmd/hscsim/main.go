// Command hscsim runs one bundled CHAI workload under one protocol
// variant and prints the measured results (optionally every counter).
//
// Usage:
//
//	hscsim -bench tq -protocol sharersTracking [-scale 2] [-threads 8] [-full] [-stats]
//
// Protocol names match the paper's figure legends: baseline, earlyResp,
// noWBcleanVic, noWBcleanVicLLC, llcWB, llcWB+useL3OnWT, ownerTracking,
// sharersTracking.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"hscsim"
)

func protocolByName(name string) (hscsim.ProtocolOptions, error) {
	switch name {
	case "baseline":
		return hscsim.ProtocolOptions{}, nil
	case "earlyResp":
		return hscsim.ProtocolOptions{EarlyDirtyResponse: true}, nil
	case "noWBcleanVic":
		return hscsim.ProtocolOptions{NoWBCleanVicToMem: true}, nil
	case "noWBcleanVicLLC":
		return hscsim.ProtocolOptions{NoWBCleanVicToMem: true, NoWBCleanVicToLLC: true}, nil
	case "llcWB":
		return hscsim.ProtocolOptions{LLCWriteBack: true}, nil
	case "llcWB+useL3OnWT":
		return hscsim.ProtocolOptions{LLCWriteBack: true, UseL3OnWT: true}, nil
	case "ownerTracking":
		return hscsim.ProtocolOptions{Tracking: hscsim.TrackOwner, LLCWriteBack: true, UseL3OnWT: true}, nil
	case "sharersTracking":
		return hscsim.ProtocolOptions{Tracking: hscsim.TrackOwnerSharers, LLCWriteBack: true, UseL3OnWT: true}, nil
	}
	return hscsim.ProtocolOptions{}, fmt.Errorf("unknown protocol %q", name)
}

func main() {
	bench := flag.String("bench", "tq", "benchmark: "+strings.Join(hscsim.Benchmarks(), ", "))
	protocol := flag.String("protocol", "baseline", "protocol variant (see -help)")
	scale := flag.Int("scale", 1, "workload scale factor")
	threads := flag.Int("threads", 8, "CPU threads (including the host thread)")
	full := flag.Bool("full", false, "use the full Table II cache sizes instead of the eval scaling")
	dumpStats := flag.Bool("stats", false, "dump every statistics counter")
	showEnergy := flag.Bool("energy", false, "print the first-order energy estimate")
	traceFile := flag.String("trace", "", "write a JSONL coherence-message trace (analyze with hsctrace)")
	flag.Parse()

	opts, err := protocolByName(*protocol)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hscsim:", err)
		os.Exit(2)
	}
	cfg := hscsim.EvalConfig(opts)
	if *full {
		cfg = hscsim.DefaultConfig()
		cfg.Protocol = opts
	}
	w, err := hscsim.NewBenchmark(*bench, hscsim.Params{Scale: *scale, CPUThreads: *threads})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hscsim:", err)
		os.Exit(1)
	}
	s := hscsim.NewSystem(cfg)
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hscsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		bw := bufio.NewWriterSize(f, 1<<20)
		defer bw.Flush()
		s.TraceTo(bw)
	}
	res, err := s.Run(w)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hscsim:", err)
		os.Exit(1)
	}

	fmt.Printf("benchmark        : %s (scale %d, %d CPU threads)\n", res.Name, *scale, *threads)
	fmt.Printf("protocol         : %s\n", res.Config)
	fmt.Printf("simulated cycles : %d\n", res.Cycles)
	fmt.Printf("memory reads     : %d\n", res.MemReads)
	fmt.Printf("memory writes    : %d\n", res.MemWrites)
	fmt.Printf("probes sent      : %d\n", res.ProbesSent)
	fmt.Printf("LLC read hits    : %d\n", res.LLCHits)
	fmt.Printf("NoC bytes        : %d\n", res.NoCBytes)

	if *showEnergy {
		fmt.Printf("\nEnergy estimate (first-order, ratios meaningful):\n%s",
			hscsim.EstimateEnergy(res, hscsim.DefaultEnergyCosts()))
	}

	if *dumpStats {
		names := make([]string, 0, len(res.Stats))
		for n := range res.Stats {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println()
		for _, n := range names {
			fmt.Printf("%-44s %12d\n", n, res.Stats[n])
		}
		fmt.Println()
		fmt.Print(s.Registry.DumpHistograms())
	}
}
