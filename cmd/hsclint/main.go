// Command hsclint runs the project's static-analysis rules (see
// internal/lint) over the given package patterns:
//
//	go run ./cmd/hsclint ./...
//
// It exits non-zero if any rule fires.
package main

import (
	"fmt"
	"os"

	"hscsim/internal/lint"
)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags := lint.Check(pkgs, lint.All())
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "hsclint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
