// Command hsclint runs the project's static-analysis rules (see
// internal/lint) over the given package patterns:
//
//	go run ./cmd/hsclint ./...
//
// It exits non-zero if any rule fires. With -json the findings are
// emitted as a JSON array on stdout (one object per diagnostic, with
// analyzer, position, and message fields) — a stable, diffable
// artifact for CI to archive and compare across pushes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hscsim/internal/lint"
)

// jsonDiag is the wire form of one finding. Position is split into
// components so downstream diffs survive checkout-path changes.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags := lint.Check(pkgs, lint.All())
	if *jsonOut {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "hsclint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
