// Command benchgate compares `go test -bench -benchmem` output (on
// stdin) against the committed BENCH_baseline.json.
//
// The allocation gate is hard: a benchmark whose allocs/op exceeds its
// baseline max_allocs_per_op fails the run, because allocation counts
// are machine-independent — a regression means a closure or message
// literal crept back into a hot path. Time-per-op is compared only
// informationally (CI hosts vary); ratios beyond ±warn-factor are
// printed as warnings.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem ./... | go run ./cmd/benchgate -baseline BENCH_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type baselineEntry struct {
	Name           string   `json:"name"`
	Package        string   `json:"package"`
	MaxAllocsPerOp *float64 `json:"max_allocs_per_op"`
	RefNsPerOp     float64  `json:"ref_ns_per_op"`
}

type baseline struct {
	Benchmarks []baselineEntry `json:"benchmarks"`
}

type result struct {
	nsPerOp     float64
	allocsPerOp float64
	hasAllocs   bool
}

// parseBench extracts per-benchmark results from `go test -bench`
// output. The "-N" GOMAXPROCS suffix is stripped so names match the
// baseline; repeated runs (-count) keep the best (lowest ns/op) — the
// comparison is against noise-floor performance, not scheduler jitter.
func parseBench(lines *bufio.Scanner) map[string]result {
	out := make(map[string]result)
	for lines.Scan() {
		f := strings.Fields(lines.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		name := f[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		r := result{}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "ns/op":
				r.nsPerOp = v
			case "allocs/op":
				r.allocsPerOp = v
				r.hasAllocs = true
			}
		}
		if prev, ok := out[name]; !ok || r.nsPerOp < prev.nsPerOp {
			// Keep the worst allocation count across repeats, though: the
			// gate must not hide a regression behind one lucky run.
			if ok && prev.hasAllocs && prev.allocsPerOp > r.allocsPerOp {
				r.allocsPerOp = prev.allocsPerOp
			}
			out[name] = r
		}
	}
	return out
}

func main() {
	basePath := flag.String("baseline", "BENCH_baseline.json", "baseline JSON path")
	warnFactor := flag.Float64("warn-factor", 2.0, "warn when ns/op drifts beyond this ratio of the reference")
	flag.Parse()

	raw, err := os.ReadFile(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: parse baseline:", err)
		os.Exit(2)
	}

	got := parseBench(bufio.NewScanner(os.Stdin))
	failed := false
	for _, b := range base.Benchmarks {
		r, ok := got[b.Name]
		if !ok {
			fmt.Printf("benchgate: %-40s MISSING from bench output\n", b.Name)
			failed = true
			continue
		}
		status := "ok"
		if b.MaxAllocsPerOp != nil {
			if !r.hasAllocs {
				status = "FAIL (no -benchmem allocs/op in output)"
				failed = true
			} else if r.allocsPerOp > *b.MaxAllocsPerOp {
				status = fmt.Sprintf("FAIL (%.1f allocs/op > gate %.0f)", r.allocsPerOp, *b.MaxAllocsPerOp)
				failed = true
			}
		}
		ratio := 0.0
		if b.RefNsPerOp > 0 {
			ratio = r.nsPerOp / b.RefNsPerOp
			if status == "ok" && (ratio > *warnFactor || ratio < 1 / *warnFactor) {
				status = fmt.Sprintf("warn: %.2fx reference ns/op (informational)", ratio)
			}
		}
		fmt.Printf("benchgate: %-40s %12.1f ns/op (%.2fx ref)  %s\n", b.Name, r.nsPerOp, ratio, status)
	}
	if failed {
		os.Exit(1)
	}
}
