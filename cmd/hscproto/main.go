// Command hscproto is the protocol transition-table toolkit: it
// statically extracts each controller's (state, event) → {next,
// actions} table from the instrumented sources (internal/proto),
// checks it against the hand-written machine specs, renders it, and
// cross-checks the statically declared transitions against the ones
// the dynamic harnesses — the differential conformance matrix, the
// exhaustive model checker, and the HeteroSync lock suite — actually
// fire.
//
// Usage:
//
//	hscproto                      # summary: machines, transitions, static verdict
//	hscproto -table               # print the tables as Markdown
//	hscproto -json                # print the tables as JSON
//	hscproto -write               # regenerate TABLES.md under -dir
//	hscproto -check               # static checks + TABLES.md freshness (CI, per push)
//	hscproto -cover [-quick] [-min 95]   # dynamic coverage cross-check (CI, nightly)
//	hscproto -diff <baseline>     # per-arm deltas vs a committed baseline
//	hscproto -reach [-limit N]    # exhaustive composite-state safety proof (CI, per push)
//	hscproto -live                # liveness: every transient state drains (CI, per push)
//	hscproto -deadlock [-dot]     # message-class dependency graph, fail on cycle (CI, per push)
//	hscproto -stall               # stall/wake liveness lint (CI, per push)
//	hscproto -contain             # observed states ⊆ static reachable set (CI, nightly)
//	hscproto -symcheck            # symmetry reduction exact vs unreduced exploration (CI, nightly)
//
// -diff compares the extracted tables against a baseline file — either
// a TABLES.md rendering or `hscproto -json` output; "-" reads stdin, so
//
//	git show main:TABLES.md | go run ./cmd/hscproto -diff -
//
// prints exactly which transition arms a branch adds, removes or
// reguards. Exits 1 when the tables differ (so it can gate a review),
// 2 on usage errors.
//
// -check exits nonzero when a reachable (state, event) cell has no
// handler and no waiver, when an arm handles a cell the spec declares
// impossible, when the per-variant dir.llc tables diverge from the
// paper's deltas, or when TABLES.md is stale. -cover exits nonzero
// when a transition fires that the static table does not declare
// (an extraction gap), or when fewer than -min percent of the
// non-exempt declared transitions fired — each unfired transition is
// listed by name.
//
// The static safety analyses (internal/protocheck) work on the
// extracted tables and an abstract one-line model of the composite
// system. -reach explores every abstract configuration exhaustively,
// exits nonzero on a safety violation (printing the shortest
// counterexample trace) or on an arm cross-check mismatch against the
// extracted tables. -live proves liveness on the same graph: under
// weak fairness every transient state must drain to quiescence via
// progress moves; a starved state is reported as a shortest lasso
// (stem + cycle) and exits nonzero. -reach and -live combine, sharing
// one exploration. The explorations run the four configurations
// concurrently, expand each BFS frontier across -j workers (default
// GOMAXPROCS), canonicalize states under permutation of the two
// symmetric CPU agents (-nosym disables the reduction for
// cross-checking), and report per-level progress on stderr.
// -deadlock builds the message-class wait-for graph
// from the tables and exits nonzero on a cycle; -dot prints the graph
// in Graphviz DOT form instead of the report. -stall lints stalling
// arms for a matching wake path. -contain runs a contended concrete
// workload per variant under the containment observer and exits
// nonzero if any observed quiescent composite state escapes the
// statically verified reachable set.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"hscsim/internal/cachearray"
	"hscsim/internal/chai"
	"hscsim/internal/conform"
	"hscsim/internal/core"
	"hscsim/internal/fsm"
	"hscsim/internal/heterosync"
	"hscsim/internal/memdata"
	"hscsim/internal/prog"
	"hscsim/internal/proto"
	"hscsim/internal/protocheck"
	"hscsim/internal/system"
	"hscsim/internal/verify"
)

func main() {
	dir := flag.String("dir", ".", "module root to extract the controller sources from")
	table := flag.Bool("table", false, "print the transition tables as Markdown")
	jsonOut := flag.Bool("json", false, "print the transition tables as JSON")
	write := flag.Bool("write", false, "regenerate TABLES.md under -dir")
	check := flag.Bool("check", false, "static checks plus TABLES.md freshness; nonzero exit on failure")
	cover := flag.Bool("cover", false, "dynamic coverage cross-check; nonzero exit on gaps")
	diffBase := flag.String("diff", "", "baseline file (TABLES.md or -json output; \"-\" = stdin) to diff the tables against")
	quick := flag.Bool("quick", false, "with -cover: reduced matrix (per-push CI budget)")
	minPct := flag.Float64("min", 95, "with -cover: minimum percentage of non-exempt transitions fired")
	reach := flag.Bool("reach", false, "exhaustive composite-state reachability + safety check; nonzero exit on violation")
	live := flag.Bool("live", false, "liveness: every transient state must drain to quiescence; nonzero exit on a lasso")
	limit := flag.Int("limit", 0, "with -reach/-live: state budget per configuration (0 = default)")
	jobs := flag.Int("j", 0, "frontier-expansion workers per configuration (0 = GOMAXPROCS)")
	nosym := flag.Bool("nosym", false, "disable the agent-permutation symmetry reduction")
	deadlock := flag.Bool("deadlock", false, "message-class deadlock-freedom check; nonzero exit on cycle")
	dot := flag.Bool("dot", false, "with -deadlock: print the wait-for graph as Graphviz DOT")
	stall := flag.Bool("stall", false, "stall/wake liveness lint; nonzero exit on findings")
	contain := flag.Bool("contain", false, "dynamic containment: observed states must be statically reachable")
	symcheck := flag.Bool("symcheck", false, "prove the symmetry reduction exact against an unreduced exploration")
	flag.Parse()

	tbl, err := proto.Extract(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hscproto: %v\n", err)
		os.Exit(1)
	}

	tablesPath := filepath.Join(*dir, "TABLES.md")
	switch {
	case *table:
		fmt.Print(tbl.Markdown())
	case *jsonOut:
		b, err := tbl.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "hscproto: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(append(b, '\n'))
	case *write:
		if err := os.WriteFile(tablesPath, []byte(tbl.Markdown()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "hscproto: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", tablesPath)
	case *check:
		os.Exit(runCheck(tbl, tablesPath))
	case *cover:
		os.Exit(runCover(tbl, *quick, *minPct))
	case *diffBase != "":
		os.Exit(runDiff(tbl, *diffBase))
	case *reach, *live:
		opts := protocheck.ExploreOpts{
			Limit: *limit, Workers: *jobs, NoSym: *nosym,
			Progress: progressPrinter(),
		}
		os.Exit(runReach(tbl, *reach, *live, opts))
	case *deadlock:
		os.Exit(runDeadlock(tbl, *dot))
	case *stall:
		os.Exit(runStall(tbl))
	case *contain:
		os.Exit(runContain(protocheck.ExploreOpts{Limit: *limit, Workers: *jobs, NoSym: *nosym}))
	case *symcheck:
		os.Exit(runSymCheck(protocheck.ExploreOpts{Limit: *limit, Workers: *jobs, Progress: progressPrinter()}))
	default:
		summarize(tbl)
	}
}

// summarize prints the per-machine transition counts and the static
// verdict.
func summarize(tbl *proto.Table) {
	total := 0
	for _, m := range tbl.Machines {
		fmt.Printf("%-14s %3d transitions\n", m.Name, len(m.Entries))
		total += len(m.Entries)
	}
	fmt.Printf("%-14s %3d transitions\n", "total", total)
	if problems := proto.CheckStatic(tbl); len(problems) > 0 {
		fmt.Printf("static check: %d problem(s); run -check for details\n", len(problems))
	} else {
		fmt.Println("static check: ok")
	}
}

// runCheck is the per-push CI gate: the extracted table must satisfy
// the machine specs and TABLES.md must be regenerated.
func runCheck(tbl *proto.Table, tablesPath string) int {
	failed := 0
	for _, p := range proto.CheckStatic(tbl) {
		fmt.Fprintf(os.Stderr, "hscproto: %s\n", p)
		failed++
	}
	want := tbl.Markdown()
	got, err := os.ReadFile(tablesPath)
	switch {
	case err != nil:
		fmt.Fprintf(os.Stderr, "hscproto: %s missing (regenerate with hscproto -write): %v\n", tablesPath, err)
		failed++
	case string(got) != want:
		fmt.Fprintf(os.Stderr, "hscproto: %s is stale; regenerate with hscproto -write\n", tablesPath)
		failed++
	}
	if failed > 0 {
		return 1
	}
	fmt.Println("static check ok; TABLES.md up to date")
	return 0
}

// runDiff compares the extracted tables against a committed baseline
// and prints the per-arm deltas.
func runDiff(tbl *proto.Table, path string) int {
	var (
		raw []byte
		err error
	)
	if path == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(path)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hscproto: baseline: %v\n", err)
		return 2
	}
	baseline, err := proto.ParseBaseline(raw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hscproto: %v\n", err)
		return 2
	}
	deltas := proto.DiffArms(baseline, tbl.Arms())
	fmt.Print(proto.FormatDiff(deltas))
	if len(deltas) > 0 {
		return 1
	}
	return 0
}

// progressPrinter returns a callback that reports per-level BFS
// progress on stderr. The four configurations explore concurrently, so
// the printer serializes writes and throttles each configuration to
// roughly one line per second (the final level always prints).
func progressPrinter() func(protocheck.ProgressInfo) {
	var mu sync.Mutex
	last := make(map[protocheck.ModelConfig]time.Time)
	return func(p protocheck.ProgressInfo) {
		mu.Lock()
		defer mu.Unlock()
		now := time.Now()
		if p.Frontier != 0 && now.Sub(last[p.Config]) < time.Second {
			return
		}
		last[p.Config] = now
		fmt.Fprintf(os.Stderr, "  [%s] depth %3d: %8d states, %8.0f st/s, frontier %d\n",
			p.Config, p.Depth, p.States, p.Rate, p.Frontier)
	}
}

// runReach is the per-push static safety and liveness gate: explore
// every abstract configuration exhaustively (concurrently, with
// frontier-parallel BFS), check the safety invariants on every
// reachable composite state, cross-check the animated arms against the
// extracted tables both ways (-reach), and prove every transient state
// drains to quiescence (-live). Both flags share the one exploration.
func runReach(tbl *proto.Table, doReach, doLive bool, opts protocheck.ExploreOpts) int {
	start := time.Now()
	findings, results, err := protocheck.CheckReach(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hscproto: %v\n", err)
		return 1
	}
	fmt.Printf("composite-state reachability, %d abstract configurations:\n", len(results))
	fmt.Print(protocheck.Summarize(results))
	if doReach {
		fmt.Println("variant coverage:")
		for _, opts := range verify.Variants() {
			fmt.Printf("  %-34s → %s\n", opts.Named(), protocheck.ConfigFor(opts))
		}
		findings = append(findings, protocheck.CrossCheckArms(tbl, results)...)
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "hscproto: %s\n", f)
	}
	if len(findings) > 0 {
		return 1
	}
	if doReach {
		fmt.Printf("every reachable state satisfies SWMR, single-owner, no-stale-dirty and inclusivity; arm cross-check clean (%v)\n",
			time.Since(start).Round(time.Millisecond))
	}
	if doLive {
		liveFindings, lives, err := protocheck.CheckLive(results)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hscproto: %v\n", err)
			return 1
		}
		fmt.Println("liveness (drain-reachability under weak fairness):")
		fmt.Print(protocheck.SummarizeLive(lives))
		for _, f := range liveFindings {
			fmt.Fprintf(os.Stderr, "hscproto: %s\n", f)
		}
		if len(liveFindings) > 0 {
			return 1
		}
		fmt.Printf("every transient state drains to quiescence under weak fairness (%v total)\n",
			time.Since(start).Round(time.Millisecond))
	}
	return 0
}

// runDeadlock builds the message-class wait-for graph from the tables
// and fails on any cycle. -dot swaps the report for Graphviz input.
func runDeadlock(tbl *proto.Table, dot bool) int {
	findings, graph := protocheck.CheckDeadlock(tbl)
	if dot {
		fmt.Print(graph.DOT())
	} else {
		fmt.Print(graph.Report())
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "hscproto: %s\n", f)
	}
	if len(findings) > 0 {
		return 1
	}
	if !dot {
		fmt.Println("message-class graph is acyclic: no protocol-level deadlock")
	}
	return 0
}

// runStall lints every stalling arm for a matching wake path.
func runStall(tbl *proto.Table) int {
	findings := protocheck.CheckStall(tbl)
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "hscproto: %s\n", f)
	}
	if len(findings) > 0 {
		return 1
	}
	fmt.Println("stall/wake lint clean: every stalling arm has a wake path")
	return 0
}

// runSymCheck is the nightly symmetry-reduction guard: per
// configuration (sequentially — the unreduced exploration roughly
// doubles the memory footprint), explore reduced and unreduced and
// check the canonical image of the unreduced set is exactly the
// reduced set.
func runSymCheck(opts protocheck.ExploreOpts) int {
	start := time.Now()
	failed := 0
	for _, cfg := range protocheck.Configs() {
		findings, red, unred, err := protocheck.CrossCheckSymmetry(cfg, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hscproto: %v\n", err)
			return 1
		}
		fmt.Printf("  %-26s reduced %8d states, unreduced %8d (%.3f×)\n",
			cfg, red.States, unred.States, float64(unred.States)/float64(red.States))
		for _, f := range findings {
			fmt.Fprintf(os.Stderr, "hscproto: %s\n", f)
			failed++
		}
	}
	if failed > 0 {
		return 1
	}
	fmt.Printf("symmetry reduction is exact for every configuration (%v)\n",
		time.Since(start).Round(time.Millisecond))
	return 0
}

// runContain is the nightly dynamic-containment gate: run a contended
// workload on the concrete simulator for every paper variant and check
// that each observed quiescent composite state is in the statically
// verified reachable set of the variant's abstract configuration.
func runContain(eopts protocheck.ExploreOpts) int {
	start := time.Now()
	explored := make(map[protocheck.ModelConfig]*protocheck.ReachResult)
	failed := 0
	for _, opts := range verify.Variants() {
		mcfg := protocheck.ConfigFor(opts)
		r, ok := explored[mcfg]
		if !ok {
			var err error
			r, err = protocheck.Explore(mcfg, eopts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hscproto: %v\n", err)
				return 1
			}
			if r.Violation != nil {
				fmt.Fprintf(os.Stderr, "hscproto: %s\n", r.Violation)
				return 1
			}
			explored[mcfg] = r
		}
		for _, seed := range []int64{7, 13} {
			sys := system.New(protocheck.ObserverConfig(opts))
			obs, err := protocheck.NewObserver(sys)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hscproto: %v\n", err)
				return 1
			}
			if _, err := sys.Run(protocheck.ContendedWorkload(seed)); err != nil {
				fmt.Fprintf(os.Stderr, "hscproto: %s seed %d: %v\n", opts.Named(), seed, err)
				failed++
				continue
			}
			findings := obs.Contained(r)
			for _, f := range findings {
				fmt.Fprintf(os.Stderr, "hscproto: %s seed %d: %s\n", opts.Named(), seed, f)
				failed++
			}
			states, samples, skipped := obs.Stats()
			fmt.Printf("  %-34s seed %2d: %3d observed states (%d samples, %d busy skips) ⊆ %d stable reachable [%s]\n",
				opts.Named(), seed, states, samples, skipped, len(r.Stable), mcfg)
		}
	}
	if failed > 0 {
		return 1
	}
	fmt.Printf("dynamic containment holds for every variant (%v)\n", time.Since(start).Round(time.Millisecond))
	return 0
}

// runCover drives every dynamic harness with transition recording on,
// then cross-checks the union of fired transitions against the static
// table.
func runCover(tbl *proto.Table, quick bool, minPct float64) int {
	rec := fsm.NewRecorder()
	start := time.Now()
	failed := 0

	fullOpts := core.Options{
		EarlyDirtyResponse: true, LLCWriteBack: true,
		Tracking: core.TrackOwnerSharers,
	}

	// 1. The differential conformance matrix: the six paper variants ×
	// directory bankings, plus coverage cells for the orthogonal options
	// (GPU write-back L2s, read-only elision, dirty-sharer retention).
	// The extra cells join the differential comparison — they must agree
	// with the reference image too.
	benches := chai.AllNames()
	banks := []int{1, 4}
	if quick {
		benches = chai.Names()
		banks = []int{1}
	}
	roOpts := fullOpts
	roOpts.ReadOnlyElision = true
	kdOpts := fullOpts
	kdOpts.KeepDirtySharersOnEvict = true
	cells := append(conform.Cells(nil, banks),
		conform.Cell{Opts: fullOpts, Banks: 1, GPUWB: true},
		conform.Cell{Opts: roOpts, Banks: 1},
		conform.Cell{Opts: kdOpts, Banks: 1},
	)
	fmt.Printf("conformance matrix: %d benchmarks x %d cells\n", len(benches), len(cells))
	_, failures := conform.Campaign(conform.CampaignConfig{
		Benchmarks: benches,
		Params:     chai.Params{Scale: 1, CPUThreads: 4},
		Cells:      cells,
		Record:     rec,
		Log: func(format string, args ...interface{}) {
			fmt.Printf(format+"\n", args...)
		},
	})
	for _, f := range failures {
		fmt.Fprintf(os.Stderr, "FAIL %v\n", f)
		failed++
	}

	// 2. The model checker: every scenario × variant, exploration
	// bounded (coverage needs transitions to fire, not exhaustiveness —
	// the full search runs in the verify test suite).
	maxStates := 20000
	if quick {
		maxStates = 4000
	}
	scenarios := append(verify.Scenarios(), verify.DMAScenarios()...)
	scenarios = append(scenarios, coverageScenarios()...)
	fmt.Printf("model checker: %d scenarios x %d variants, <=%d states each\n",
		len(scenarios), len(verify.Variants()), maxStates)
	for _, opts := range verify.Variants() {
		opts.Recorder = rec
		for _, sc := range scenarios {
			res := verify.Run(verify.Config{Opts: opts, Scenario: sc, MaxStates: maxStates})
			if res.Violation != nil {
				fmt.Fprintf(os.Stderr, "FAIL checker %s under %s: %v\n", sc.Name, opts.Named(), res.Violation)
				failed++
			}
		}
	}

	// 3. The HeteroSync lock suite: fine-grained atomics under the
	// baseline, the fully optimized tracking variant, and the latter
	// with write-back GPU L2s (device-scope atomics on dirty TCC lines).
	hsCells := []struct {
		opts  core.Options
		gpuWB bool
	}{{core.Options{}, false}, {fullOpts, false}, {fullOpts, true}}
	fmt.Printf("heterosync: %d benchmarks x %d variants\n", len(heterosync.Names()), len(hsCells))
	for _, name := range heterosync.Names() {
		for _, hc := range hsCells {
			w, err := heterosync.ByName(name, heterosync.DefaultParams())
			if err == nil {
				err = runRecorded(w, hc.opts, rec, 0, hc.gpuWB)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "FAIL heterosync %s under %s: %v\n", name, hc.opts.Named(), err)
				failed++
			}
		}
	}

	// 4. Targeted directory-pressure runs: a 16-entry directory forces
	// dirty-entry evictions (BackInval) and victims racing replaced
	// entries — transitions a right-sized directory almost never fires.
	// trackONoWB drops LLCWriteBack so pulled-back dirty data takes the
	// write-through BackInval arm.
	trackO := core.Options{EarlyDirtyResponse: true, LLCWriteBack: true, Tracking: core.TrackOwner}
	trackONoWB := core.Options{EarlyDirtyResponse: true, Tracking: core.TrackOwner}
	for _, opts := range []core.Options{trackO, trackONoWB, fullOpts, kdOpts} {
		for _, bench := range []string{"bs", "hsto", "tq"} {
			w, err := chai.ByName(bench, chai.Params{Scale: 1, CPUThreads: 4})
			if err == nil {
				err = runRecorded(w, opts, rec, 16, false)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "FAIL dir-pressure %s under %s: %v\n", bench, opts.Named(), err)
				failed++
			}
		}
	}

	// 5. The coverage workload: GPU barriers, every atomic-scope ×
	// TCC-state pairing, and DMA + instruction fetches over declared
	// read-only ranges. Run write-through under read-only elision (the
	// dir.ro machine) and write-back for the dirty-TCC atomic arms; a
	// UseL3OnWT-without-LLCWriteBack run exercises the write-through LLC
	// insert on TCC write-throughs.
	useL3 := core.Options{UseL3OnWT: true}
	covRuns := []struct {
		name  string
		opts  core.Options
		gpuWB bool
	}{
		{"covmix/ro+wt", roOpts, false},
		{"covmix/full+gpuwb", fullOpts, true},
		{"covmix/useL3OnWT", useL3, false},
	}
	fmt.Printf("coverage workload: %d runs\n", len(covRuns))
	for _, cr := range covRuns {
		if err := runRecorded(coverageWorkload(), cr.opts, rec, 0, cr.gpuWB); err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", cr.name, err)
			failed++
		}
	}

	fmt.Printf("harnesses done in %v; %d distinct transitions fired\n\n",
		time.Since(start).Round(time.Millisecond), rec.Len())

	cov := proto.CrossCheck(tbl, rec)
	fmt.Print(proto.Report(cov))
	percent, problems := proto.Summarize(cov, minPct)
	for _, p := range problems {
		fmt.Fprintf(os.Stderr, "hscproto: %s\n", p)
		failed++
	}
	fmt.Printf("\ncoverage: %.1f%% of non-exempt declared transitions fired (bar: %.0f%%)\n", percent, minPct)
	if failed > 0 {
		return 1
	}
	return 0
}

// runRecorded executes one workload on the conformance-scale system
// with the oracle attached, merging its fired transitions into rec.
func runRecorded(w system.Workload, opts core.Options, rec *fsm.Recorder, dirEntries int, gpuWB bool) error {
	cfg := conform.EvalConfig(opts)
	cfg.Oracle = true
	cfg.GPU.WriteBackL2 = gpuWB
	cfg.Protocol.Recorder = fsm.NewRecorder()
	if dirEntries > 0 {
		cfg.Geometry.DirEntries = dirEntries
		if cfg.Geometry.DirAssoc > dirEntries/4 {
			cfg.Geometry.DirAssoc = dirEntries / 4
		}
	}
	s := system.New(cfg)
	if _, err := s.Run(w); err != nil {
		return err
	}
	if err := s.CheckCoherence(); err != nil {
		return err
	}
	rec.Merge(cfg.Protocol.Recorder)
	return nil
}

// coverageScenarios are model-checker scenarios aimed at specific
// declared-but-rare transitions: instruction fetches (RdBlkS) against
// shared and owned lines, foreign requests (GPU atomic, DMA) against a
// two-sharer line, and a store replaying against its own victim buffer.
// The checker explores every interleaving, so each scenario fires its
// target in at least one execution.
func coverageScenarios() []verify.Scenario {
	const a, b = cachearray.LineAddr(0x10), cachearray.LineAddr(0x12) // same L2 set
	ld := func(l cachearray.LineAddr) verify.AgentOp { return verify.AgentOp{Kind: verify.Load, Line: l} }
	st := func(l cachearray.LineAddr) verify.AgentOp { return verify.AgentOp{Kind: verify.Store, Line: l} }
	ifetch := func(l cachearray.LineAddr) verify.AgentOp { return verify.AgentOp{Kind: verify.IFetch, Line: l} }
	at := func(l cachearray.LineAddr) verify.AgentOp { return verify.AgentOp{Kind: verify.Atomic, Line: l} }
	return []verify.Scenario{
		{ // (I,RdBlkS)->S then (S,RdBlkS)->S in the sequential orders
			Name:  "cov-ifetch-shared",
			Lines: []cachearray.LineAddr{a},
			CPU0:  []verify.AgentOp{ifetch(a)},
			CPU1:  []verify.AgentOp{ifetch(a)},
		},
		{ // dirty owner probed by an ifetch: (O,RdBlkS)->O (fn. h)
			Name:  "cov-ifetch-owned-dirty",
			Lines: []cachearray.LineAddr{a},
			CPU0:  []verify.AgentOp{st(a)},
			CPU1:  []verify.AgentOp{ifetch(a)},
		},
		{ // clean Exclusive owner probed by an ifetch: (O,RdBlkS)->S
			Name:  "cov-ifetch-owned-clean",
			Lines: []cachearray.LineAddr{a},
			CPU0:  []verify.AgentOp{ld(a)},
			CPU1:  []verify.AgentOp{ifetch(a)},
		},
		{ // two sharers, then a system-scope atomic: (S,Atomic)->I
			Name:  "cov-shared-atomic",
			Lines: []cachearray.LineAddr{a},
			CPU0:  []verify.AgentOp{ld(a)},
			CPU1:  []verify.AgentOp{ld(a)},
			GPU:   []verify.AgentOp{at(a)},
		},
		{ // two sharers, then DMA: (S,DMARd)->S and (S,DMAWr)->I
			Name:  "cov-shared-dma",
			Lines: []cachearray.LineAddr{a},
			CPU0:  []verify.AgentOp{ld(a)},
			CPU1:  []verify.AgentOp{ld(a)},
			DMA:   []verify.AgentOp{ld(a), st(a)},
		},
		{ // a store hitting its own victim buffer: (WB,Store)->WB
			Name:  "cov-wb-store",
			Lines: []cachearray.LineAddr{a, b},
			CPU0:  []verify.AgentOp{st(a), st(b), st(a)},
		},
	}
}

// Coverage-workload address map. The per-wave counters live on private
// lines so every final value is schedule-independent; the read-only
// input and the CPU code regions are declared in Workload.ReadOnly so
// a read-only-elision run drives the dir.ro machine with DMA reads and
// instruction fetches.
const (
	covBase    = memdata.Addr(0x1000_0000)
	covROBase  = memdata.Addr(0x2000_0000)
	covROBytes = 1024
	covWaves   = 4
)

// coverageWorkload pairs every atomic scope with every reachable TCC
// line state (fresh, valid, dirty), joins a workgroup barrier, and
// streams a declared read-only range through the DMA engine and the
// CPU L2s.
func coverageWorkload() system.Workload {
	wl := func(w, k int) memdata.Addr { return covBase + memdata.Addr(1+w*5+k)*64 }

	gpuWork := func(wv *prog.Wave) {
		wv.Barrier()
		w := wv.Global
		wv.AtomicSysAdd(covBase, 1) // shared contended counter
		_ = wv.Load(wl(w, 0))       // valid, then system-scope atomic
		wv.AtomicSysAdd(wl(w, 0), 4)
		wv.Store(wl(w, 1), uint64(w)+1) // dirty (WB L2), then system-scope
		wv.AtomicSysAdd(wl(w, 1), 10)
		wv.Store(wl(w, 2), uint64(w)+1) // dirty, then device-scope
		wv.AtomicDevAdd(wl(w, 2), 10)
		wv.AtomicDevAdd(wl(w, 3), 5) // fresh, device-scope
		_ = wv.Load(wl(w, 4))        // valid, then device-scope
		wv.AtomicDevAdd(wl(w, 4), 7)
		wv.Barrier()
	}
	kernel := &prog.Kernel{
		Name: "covmix", Workgroups: 2, WavesPerWG: covWaves / 2,
		CodeAddr: 0xE000_0000, Fn: gpuWork,
	}

	threads := make([]func(*prog.CPUThread), 2)
	threads[0] = func(t *prog.CPUThread) {
		h := t.Launch(kernel)
		t.DMAOut(covROBase, covROBytes) // DMA read of a read-only range
		for i := 0; i < covROBytes/8; i += 8 {
			_ = t.Load(covROBase + memdata.Addr(i)*8)
		}
		t.Wait(h)
	}
	threads[1] = func(t *prog.CPUThread) {
		for i := 0; i < covROBytes/8; i += 4 {
			_ = t.Load(covROBase + memdata.Addr(i)*8)
		}
	}

	return system.Workload{
		Name: "covmix",
		Setup: func(fm *memdata.Memory) {
			fm.Write(covBase, 100)
			for w := 0; w < covWaves; w++ {
				fm.Write(wl(w, 0), 3)
				fm.Write(wl(w, 4), 50)
			}
			for i := 0; i < covROBytes/8; i++ {
				fm.Write(covROBase+memdata.Addr(i)*8, uint64(i)*3+7)
			}
		},
		Threads: threads,
		ReadOnly: [][2]memdata.Addr{
			{covROBase, covROBase + covROBytes},
			// The CPU cores' instruction-fetch regions (disjoint per
			// core, 64 KiB apart starting at 0xF000_0000) — fetched
			// RdBlkS, never written.
			{0xF000_0000, 0xF000_0000 + 8*0x10000},
		},
		Verify: func(fm *memdata.Memory) error {
			if got := fm.Read(covBase); got != 100+covWaves {
				return fmt.Errorf("covmix: shared counter = %d, want %d", got, 100+covWaves)
			}
			for w := 0; w < covWaves; w++ {
				want := []uint64{7, uint64(w) + 11, uint64(w) + 11, 5, 57}
				for k, wv := range want {
					if got := fm.Read(wl(w, k)); got != wv {
						return fmt.Errorf("covmix: wave %d counter %d = %d, want %d", w, k, got, wv)
					}
				}
			}
			for i := 0; i < covROBytes/8; i++ {
				if got := fm.Read(covROBase + memdata.Addr(i)*8); got != uint64(i)*3+7 {
					return fmt.Errorf("covmix: read-only word %d clobbered (= %d)", i, got)
				}
			}
			return nil
		},
	}
}
