// Command hscconform runs the differential conformance matrix: every
// CHAI workload under all six paper protocol variants, on monolithic
// and 4-way-banked directories, with the runtime coherence oracle
// attached — cross-checking that every cell converges to the identical
// final memory image. It then differential-checks a batch of random
// race-free multi-agent cases the same way; a failing case is shrunk
// by the delta-debugging minimizer and printed as a replayable
// per-agent program listing (convertible to an internal/verify checker
// scenario).
//
// Usage:
//
//	hscconform [-quick] [-seed N] [-run bs,tq,...] [-cases N] [-threads N]
//
// -quick shrinks the workload scale and random-case batch for CI
// per-push runs; the default (nightly) configuration runs the full
// suite at evaluation scale. Exit status is nonzero on any failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hscsim/internal/chai"
	"hscsim/internal/conform"
)

func main() {
	quick := flag.Bool("quick", false, "small scale and fewer random cases (per-push CI budget)")
	seed := flag.Int64("seed", 0, "campaign seed: perturbs CHAI inputs and random cases (0 = paper inputs)")
	run := flag.String("run", "", "comma-separated benchmark subset (default: the full CHAI suite)")
	nCases := flag.Int("cases", -1, "random differential cases (-1 = 8 quick, 64 full)")
	threads := flag.Int("threads", 0, "CPU worker threads per run (0 = 4 quick, 8 full)")
	flag.Parse()

	scale := 2
	cases := 64
	cpus := 8
	if *quick {
		scale, cases, cpus = 1, 8, 4
	}
	if *nCases >= 0 {
		cases = *nCases
	}
	if *threads > 0 {
		cpus = *threads
	}
	var benches []string
	if *run != "" {
		benches = strings.Split(*run, ",")
	}

	cells := conform.Cells(nil, nil) // all six variants × {monolithic, 4 banks}
	fmt.Printf("conformance matrix: %d cells per workload (6 variants × {1,4} dir banks), scale=%d, threads=%d, seed=%d\n",
		len(cells), scale, cpus, *seed)

	failed := 0
	start := time.Now()
	_, failures := conform.Campaign(conform.CampaignConfig{
		Benchmarks: benches,
		Params:     chai.Params{Scale: scale, CPUThreads: cpus, Seed: *seed},
		Log: func(format string, args ...interface{}) {
			fmt.Printf(format+"\n", args...)
		},
	})
	for _, f := range failures {
		failed++
		fmt.Fprintf(os.Stderr, "FAIL %v\n", f)
	}
	fmt.Printf("CHAI campaign done in %v\n", time.Since(start).Round(time.Millisecond))

	fmt.Printf("random-case differential: %d cases\n", cases)
	for i := 0; i < cases; i++ {
		caseSeed := *seed*1_000_003 + int64(i)
		c := conform.RandomCase(caseSeed, 3, 24, 8)
		fail := conform.DiffCase(c, cells, 0)
		if fail == nil {
			continue
		}
		failed++
		fmt.Fprintf(os.Stderr, "FAIL %v\n", fail)
		fails := func(cand conform.Case) bool { return conform.DiffCase(cand, cells, 0) != nil }
		min := conform.Minimize(c, fails)
		fmt.Fprintf(os.Stderr, "minimized reproducer (%d ops, %d CPU threads):\n%s",
			min.Ops(), len(min.CPU), min)
		if sc, err := min.Scenario(); err == nil {
			fmt.Fprintf(os.Stderr, "replay exhaustively with internal/verify: scenario %q over lines %v\n",
				sc.Name, sc.Lines)
		}
	}

	if failed > 0 {
		fmt.Fprintf(os.Stderr, "hscconform: %d failure(s)\n", failed)
		os.Exit(1)
	}
	fmt.Printf("all cells agree; done in %v\n", time.Since(start).Round(time.Millisecond))
}
