// Command hsctrace analyzes a coherence-message trace produced by
// `hscsim -trace` (JSON lines, see internal/trace): traffic by message
// type, the hottest cache lines, and optionally one line's full
// coherence history.
//
// Usage:
//
//	hscsim -bench tq -protocol baseline -trace /tmp/tq.jsonl
//	hsctrace /tmp/tq.jsonl
//	hsctrace -line 0x403001 -top 20 /tmp/tq.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hscsim/internal/trace"
)

func main() {
	lineFlag := flag.String("line", "", "print the full history of one cache line (hex or decimal)")
	top := flag.Int("top", 10, "number of hottest lines to list")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hsctrace [-line ADDR] [-top N] trace.jsonl")
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "hsctrace:", err)
		os.Exit(1)
	}
	defer f.Close()
	events, err := trace.Read(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hsctrace:", err)
		os.Exit(1)
	}

	if *lineFlag != "" {
		addr, err := strconv.ParseUint(strings.TrimPrefix(*lineFlag, "0x"), hexBase(*lineFlag), 64)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hsctrace: bad -line:", err)
			os.Exit(2)
		}
		hist := trace.History(events, addr)
		fmt.Printf("line %#x: %d messages\n", addr, len(hist))
		for _, ev := range hist {
			extra := ""
			if ev.Grant != "" {
				extra = " grant=" + ev.Grant
			}
			if ev.HasData {
				extra += " data"
			}
			if ev.Dirty {
				extra += " dirty"
			}
			fmt.Printf("  [%10d] %-14s %2d → %-2d%s\n", ev.Tick, ev.Type, ev.Src, ev.Dst, extra)
		}
		return
	}

	fmt.Print(trace.Summarize(events, *top))
}

func hexBase(s string) int {
	if strings.HasPrefix(s, "0x") {
		return 16
	}
	return 10
}
