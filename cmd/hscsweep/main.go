// Command hscsweep characterizes how a workload scales with the
// system's structural parameters — CorePairs, CUs, directory banks,
// TCC banks and store-buffer depth — under a chosen protocol variant.
// This is the "characterization" companion to hscfig's fixed-shape
// figures (§V's benchmark characterization).
//
// Usage:
//
//	hscsweep [-bench tq] [-protocol sharersTracking] [-scale 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"hscsim/internal/chai"
	"hscsim/internal/core"
	"hscsim/internal/figures"
	"hscsim/internal/heterosync"
	"hscsim/internal/system"
)

func protoByName(name string) (core.Options, error) {
	switch name {
	case "baseline":
		return core.Options{}, nil
	case "ownerTracking":
		return core.Options{Tracking: core.TrackOwner, LLCWriteBack: true, UseL3OnWT: true}, nil
	case "sharersTracking":
		return core.Options{Tracking: core.TrackOwnerSharers, LLCWriteBack: true, UseL3OnWT: true}, nil
	}
	return core.Options{}, fmt.Errorf("unknown protocol %q (baseline, ownerTracking, sharersTracking)", name)
}

func main() {
	bench := flag.String("bench", "tq", "benchmark (CHAI or HeteroSync)")
	protocol := flag.String("protocol", "sharersTracking", "protocol variant")
	scale := flag.Int("scale", 1, "workload scale")
	flag.Parse()

	opts, err := protoByName(*protocol)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hscsweep:", err)
		os.Exit(2)
	}

	run := func(mutate func(*system.Config), threads int) system.Results {
		cfg := figures.EvalSystemConfig(opts)
		mutate(&cfg)
		w, err := chai.ByName(*bench, chai.Params{Scale: *scale, CPUThreads: threads})
		if err != nil {
			w, err = heterosync.ByName(*bench, heterosync.Params{Scale: *scale})
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "hscsweep:", err)
			os.Exit(2)
		}
		s := system.New(cfg)
		res, rerr := s.Run(w)
		if rerr != nil {
			fmt.Fprintln(os.Stderr, "hscsweep:", rerr)
			os.Exit(1)
		}
		return res
	}

	fmt.Printf("benchmark %s, protocol %s, scale %d\n\n", *bench, *protocol, *scale)

	fmt.Printf("CPU scaling (CorePairs × 2 threads)\n")
	fmt.Printf("%8s %12s %10s %10s\n", "pairs", "cycles", "probes", "mem")
	for _, pairs := range []int{1, 2, 4} {
		p := pairs
		res := run(func(c *system.Config) { c.NumCorePairs = p }, p*2)
		fmt.Printf("%8d %12d %10d %10d\n", p, res.Cycles, res.ProbesSent, res.MemAccesses())
	}

	fmt.Printf("\nGPU scaling (CUs)\n")
	fmt.Printf("%8s %12s %10s %10s\n", "CUs", "cycles", "probes", "mem")
	for _, cus := range []int{2, 4, 8} {
		n := cus
		res := run(func(c *system.Config) { c.GPUDisp.NumCUs = n }, 8)
		fmt.Printf("%8d %12d %10d %10d\n", n, res.Cycles, res.ProbesSent, res.MemAccesses())
	}

	fmt.Printf("\nDirectory banking (§VII)\n")
	fmt.Printf("%8s %12s %10s %10s\n", "banks", "cycles", "probes", "mem")
	for _, banks := range []int{1, 2, 4} {
		b := banks
		res := run(func(c *system.Config) { c.DirBanks = b }, 8)
		fmt.Printf("%8d %12d %10d %10d\n", b, res.Cycles, res.ProbesSent, res.MemAccesses())
	}

	fmt.Printf("\nTCC banking\n")
	fmt.Printf("%8s %12s %10s %10s\n", "TCCs", "cycles", "probes", "mem")
	for _, tccs := range []int{1, 2} {
		n := tccs
		res := run(func(c *system.Config) { c.GPU.NumTCCs = n }, 8)
		fmt.Printf("%8d %12d %10d %10d\n", n, res.Cycles, res.ProbesSent, res.MemAccesses())
	}

	fmt.Printf("\nStore-buffer depth (CPU MLP)\n")
	fmt.Printf("%8s %12s %10s %10s\n", "slots", "cycles", "probes", "mem")
	for _, sb := range []int{0, 4, 16} {
		n := sb
		res := run(func(c *system.Config) { c.CPU.StoreBufferSize = n }, 8)
		fmt.Printf("%8d %12d %10d %10d\n", n, res.Cycles, res.ProbesSent, res.MemAccesses())
	}
}
