// Command hscsweep characterizes how a workload scales with the
// system's structural parameters — CorePairs, CUs, directory banks,
// TCC banks and store-buffer depth — under a chosen protocol variant.
// This is the "characterization" companion to hscfig's fixed-shape
// figures (§V's benchmark characterization).
//
// Every point of the sweep runs as a job on the simulation engine
// (internal/engine): points execute in parallel on the worker pool, and
// with -cache the results persist, so re-running a sweep — or sharing a
// cache directory with hscfig/hscserve — is served from the
// content-addressed store instead of re-simulating.
//
// Usage:
//
//	hscsweep [-bench tq] [-protocol sharersTracking] [-scale 1] [-cache dir] [-j N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"hscsim/internal/core"
	"hscsim/internal/engine"
	"hscsim/internal/system"
)

func protoByName(name string) (core.Options, error) {
	switch name {
	case "baseline":
		return core.Options{}, nil
	case "ownerTracking":
		return core.Options{Tracking: core.TrackOwner, LLCWriteBack: true, UseL3OnWT: true}, nil
	case "sharersTracking":
		return core.Options{Tracking: core.TrackOwnerSharers, LLCWriteBack: true, UseL3OnWT: true}, nil
	}
	return core.Options{}, fmt.Errorf("unknown protocol %q (baseline, ownerTracking, sharersTracking)", name)
}

func main() {
	bench := flag.String("bench", "tq", "benchmark (CHAI or HeteroSync)")
	protocol := flag.String("protocol", "sharersTracking", "protocol variant")
	scale := flag.Int("scale", 1, "workload scale")
	cacheDir := flag.String("cache", "", "persist results in this directory (re-runs become cache hits)")
	jobs := flag.Int("j", 0, "parallel simulation jobs (0 = GOMAXPROCS)")
	flag.Parse()

	opts, err := protoByName(*protocol)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hscsweep:", err)
		os.Exit(2)
	}

	cache, err := engine.NewCache(0, *cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hscsweep:", err)
		os.Exit(1)
	}
	eng := engine.New(engine.Config{Workers: *jobs, Cache: cache})
	defer eng.Close()

	spec := func(topo engine.TopologySpec, threads int) engine.Spec {
		return engine.Spec{
			Bench:    *bench,
			Scale:    *scale,
			Threads:  threads,
			Protocol: engine.ProtocolFromOptions(opts),
			Topology: topo,
			Config:   engine.ConfigEval,
		}
	}
	if err := spec(engine.TopologySpec{}, 8).Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "hscsweep:", err)
		os.Exit(2)
	}

	type section struct {
		title  string
		column string
		points []int
		spec   func(v int) engine.Spec
	}
	sections := []section{
		{"CPU scaling (CorePairs × 2 threads)", "pairs", []int{1, 2, 4},
			func(v int) engine.Spec { return spec(engine.TopologySpec{NumCorePairs: v}, v*2) }},
		{"GPU scaling (CUs)", "CUs", []int{2, 4, 8},
			func(v int) engine.Spec { return spec(engine.TopologySpec{NumCUs: v}, 8) }},
		{"Directory banking (§VII)", "banks", []int{1, 2, 4},
			func(v int) engine.Spec { return spec(engine.TopologySpec{DirBanks: v}, 8) }},
		{"TCC banking", "TCCs", []int{1, 2},
			func(v int) engine.Spec { return spec(engine.TopologySpec{NumTCCs: v}, 8) }},
		{"Store-buffer depth (CPU MLP)", "slots", []int{0, 4, 16},
			func(v int) engine.Spec {
				return spec(engine.TopologySpec{StoreBufferSize: v, StoreBufferZero: v == 0}, 8)
			}},
	}

	// Submit every point up front so the pool simulates them in
	// parallel; the prints below wait on the deduplicated jobs in order.
	for _, sec := range sections {
		for _, v := range sec.points {
			if _, err := eng.Submit(sec.spec(v)); err != nil {
				break // queue full: RunResults below resubmits
			}
		}
	}

	fmt.Printf("benchmark %s, protocol %s, scale %d\n", *bench, *protocol, *scale)

	for _, sec := range sections {
		fmt.Printf("\n%s\n", sec.title)
		fmt.Printf("%8s %12s %10s %10s\n", sec.column, "cycles", "probes", "mem")
		for _, v := range sec.points {
			res, err := eng.RunResults(context.Background(), sec.spec(v))
			if err != nil {
				fmt.Fprintln(os.Stderr, "hscsweep:", err)
				os.Exit(1)
			}
			printRow(v, res)
		}
	}

	st := eng.Stats()
	fmt.Printf("\nengine: %d simulated, %d served from cache\n", st.Done, st.CacheHits)
}

func printRow(v int, res system.Results) {
	fmt.Printf("%8d %12d %10d %10d\n", v, res.Cycles, res.ProbesSent, res.MemAccesses())
}
