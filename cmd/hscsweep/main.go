// Command hscsweep characterizes how a workload scales with the
// system's structural parameters — CorePairs, CUs, directory banks,
// TCC banks and store-buffer depth — under a chosen protocol variant.
// This is the "characterization" companion to hscfig's fixed-shape
// figures (§V's benchmark characterization).
//
// The whole sweep is one engine.SweepSpec (benches × variants ×
// topology points). Locally, every point runs as a job on the
// simulation engine (internal/engine): points execute in parallel on
// the worker pool, and with -cache the results persist, so re-running
// a sweep — or sharing a cache directory with hscfig/hscserve — is
// served from the content-addressed store instead of re-simulating.
//
// With -server, the sweep is submitted as ONE batch (POST /sweeps) to
// an hscserve node or fleet, which expands it server-side, routes
// cells to their consistent-hash home peers, and streams per-cell
// results back as they complete. The printed table is identical either
// way — the engine's determinism guarantees byte-identical per-cell
// results in-process, on one node, or across a fleet (-dump writes
// them out for comparison).
//
// Usage:
//
//	hscsweep [-bench tq] [-protocol sharersTracking] [-scale 1] [-cache dir] [-j N]
//	         [-server http://host:8080] [-dump cells.tsv]
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"hscsim/internal/engine"
	"hscsim/internal/system"
)

type section struct {
	title  string
	column string
	values []int
	points []engine.SweepPoint
}

// buildSections lays out the characterization grid. The concatenation
// of every section's points, in order, IS the sweep's point list, so
// (section, point) maps to a cell index by running count.
func buildSections() []section {
	topo := func(label string, t engine.TopologySpec, threads int) engine.SweepPoint {
		return engine.SweepPoint{Label: label, Topology: t, Threads: threads}
	}
	sections := []section{
		{title: "CPU scaling (CorePairs × 2 threads)", column: "pairs", values: []int{1, 2, 4}},
		{title: "GPU scaling (CUs)", column: "CUs", values: []int{2, 4, 8}},
		{title: "Directory banking (§VII)", column: "banks", values: []int{1, 2, 4}},
		{title: "TCC banking", column: "TCCs", values: []int{1, 2}},
		{title: "Store-buffer depth (CPU MLP)", column: "slots", values: []int{0, 4, 16}},
	}
	for si := range sections {
		s := &sections[si]
		for _, v := range s.values {
			label := fmt.Sprintf("%s=%d", s.column, v)
			switch s.column {
			case "pairs":
				s.points = append(s.points, topo(label, engine.TopologySpec{NumCorePairs: v}, v*2))
			case "CUs":
				s.points = append(s.points, topo(label, engine.TopologySpec{NumCUs: v}, 8))
			case "banks":
				s.points = append(s.points, topo(label, engine.TopologySpec{DirBanks: v}, 8))
			case "TCCs":
				s.points = append(s.points, topo(label, engine.TopologySpec{NumTCCs: v}, 8))
			case "slots":
				s.points = append(s.points, topo(label, engine.TopologySpec{StoreBufferSize: v, StoreBufferZero: v == 0}, 8))
			}
		}
	}
	return sections
}

func main() {
	bench := flag.String("bench", "tq", "benchmark (CHAI or HeteroSync)")
	protocol := flag.String("protocol", "sharersTracking", "protocol variant")
	scale := flag.Int("scale", 1, "workload scale")
	cacheDir := flag.String("cache", "", "persist results in this directory (re-runs become cache hits)")
	jobs := flag.Int("j", 0, "parallel simulation jobs (0 = GOMAXPROCS)")
	server := flag.String("server", "", "submit the sweep as one batch to this hscserve node/fleet")
	dump := flag.String("dump", "", "write per-cell 'hash<TAB>result' lines (expansion order) to this file")
	flag.Parse()

	variant, err := engine.NamedVariant(*protocol)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hscsweep:", err)
		os.Exit(2)
	}

	sections := buildSections()
	var points []engine.SweepPoint
	for _, s := range sections {
		points = append(points, s.points...)
	}
	sweep := engine.SweepSpec{
		Benches:  []string{*bench},
		Variants: []engine.ProtocolSpec{variant},
		Points:   points,
		Scale:    *scale,
		Config:   engine.ConfigEval,
	}
	if err := sweep.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "hscsweep:", err)
		os.Exit(2)
	}
	cells, err := sweep.Cells()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hscsweep:", err)
		os.Exit(2)
	}

	var results [][]byte
	var summary string
	if *server != "" {
		results, summary, err = runRemote(*server, sweep, len(cells))
	} else {
		results, summary, err = runLocal(sweep, cells, *cacheDir, *jobs)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hscsweep:", err)
		os.Exit(1)
	}

	if *dump != "" {
		if err := dumpCells(*dump, cells, results); err != nil {
			fmt.Fprintln(os.Stderr, "hscsweep:", err)
			os.Exit(1)
		}
	}

	fmt.Printf("benchmark %s, protocol %s, scale %d\n", *bench, *protocol, *scale)
	idx := 0
	for _, sec := range sections {
		fmt.Printf("\n%s\n", sec.title)
		fmt.Printf("%8s %12s %10s %10s\n", sec.column, "cycles", "probes", "mem")
		for i := range sec.points {
			res, err := engine.DecodeResult(results[idx])
			if err != nil {
				fmt.Fprintln(os.Stderr, "hscsweep:", err)
				os.Exit(1)
			}
			printRow(sec.values[i], res)
			idx++
		}
	}
	fmt.Printf("\n%s\n", summary)
}

// runLocal executes every cell on an in-process engine (the original
// single-host mode).
func runLocal(sweep engine.SweepSpec, cells []engine.Spec, cacheDir string, jobs int) ([][]byte, string, error) {
	cache, err := engine.NewCache(0, cacheDir)
	if err != nil {
		return nil, "", err
	}
	eng := engine.New(engine.Config{Workers: jobs, Cache: cache})
	defer eng.Close()

	// Submit every point up front so the pool simulates them in
	// parallel; the waits below collect the deduplicated jobs in order.
	for _, c := range cells {
		if _, err := eng.Submit(c); err != nil {
			break // queue full: the Run below resubmits
		}
	}
	results := make([][]byte, len(cells))
	for i, c := range cells {
		b, err := eng.Run(context.Background(), c)
		if err != nil {
			return nil, "", err
		}
		results[i] = b
	}
	st := eng.Stats()
	return results, fmt.Sprintf("engine: %d simulated, %d served from cache", st.Done, st.CacheHits), nil
}

// runRemote submits the sweep as one POST /sweeps batch and collects
// the NDJSON stream.
func runRemote(server string, sweep engine.SweepSpec, n int) ([][]byte, string, error) {
	body, err := json.Marshal(sweep)
	if err != nil {
		return nil, "", err
	}
	resp, err := http.Post(strings.TrimRight(server, "/")+"/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return nil, "", fmt.Errorf("server: %s: %s", resp.Status, strings.TrimSpace(buf.String()))
	}

	// Cell lines and the summary line both carry a "cached" field with
	// DIFFERENT types (per-cell bool, summary count), so each line kind
	// gets its own decode.
	results := make([][]byte, n)
	summary := ""
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		var head struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &head); err != nil {
			return nil, "", fmt.Errorf("bad stream line: %w", err)
		}
		switch head.Type {
		case "cell":
			var l struct {
				Index  int             `json:"index"`
				State  string          `json:"state"`
				Error  string          `json:"error"`
				Result json.RawMessage `json:"result"`
			}
			if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
				return nil, "", fmt.Errorf("bad cell line: %w", err)
			}
			if l.State == "failed" {
				return nil, "", fmt.Errorf("cell %d failed: %s", l.Index, l.Error)
			}
			if l.Index < 0 || l.Index >= n {
				return nil, "", fmt.Errorf("cell index %d out of range", l.Index)
			}
			results[l.Index] = []byte(l.Result)
		case "summary":
			var l struct {
				Total  int `json:"total"`
				Failed int `json:"failed"`
				Cached int `json:"cached"`
			}
			if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
				return nil, "", fmt.Errorf("bad summary line: %w", err)
			}
			summary = fmt.Sprintf("fleet: %d cells, %d served from cache, %d failed", l.Total, l.Cached, l.Failed)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, "", err
	}
	for i, r := range results {
		if r == nil {
			return nil, "", fmt.Errorf("stream ended without a result for cell %d", i)
		}
	}
	if summary == "" {
		summary = "fleet: stream ended without summary"
	}
	return results, summary, nil
}

// dumpCells writes 'hash<TAB>result' per cell in expansion order —
// a canonical, diffable record used by the fleet smoke test to prove
// single-node, 3-node, and in-process sweeps byte-identical.
func dumpCells(path string, cells []engine.Spec, results [][]byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for i, c := range cells {
		fmt.Fprintf(w, "%s\t%s\n", c.Hash(), results[i])
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func printRow(v int, res system.Results) {
	fmt.Printf("%8d %12d %10d %10d\n", v, res.Cycles, res.ProbesSent, res.MemAccesses())
}
