// Command hscfig regenerates the paper's evaluation tables and figures
// (Tables II/III, Figs. 4–7) by sweeping the CHAI workloads over the
// protocol variants. With no flags it regenerates everything.
//
// Usage:
//
//	hscfig [-fig4] [-fig5] [-fig6] [-fig7] [-table2] [-table3] [-ablations]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"hscsim/internal/chai"
	"hscsim/internal/core"
	"hscsim/internal/engine"
	"hscsim/internal/figures"
	"hscsim/internal/system"
)

func main() {
	fig4 := flag.Bool("fig4", false, "regenerate Fig. 4 (optimization speedups)")
	fig5 := flag.Bool("fig5", false, "regenerate Fig. 5 (memory accesses)")
	fig6 := flag.Bool("fig6", false, "regenerate Fig. 6 (state-tracking speedups)")
	fig7 := flag.Bool("fig7", false, "regenerate Fig. 7 (probe reduction)")
	table1 := flag.Bool("table1", false, "regenerate Table I (directory transitions) from the implementation")
	table2 := flag.Bool("table2", false, "print Table II (cache configurations)")
	table3 := flag.Bool("table3", false, "print Table III (system configuration)")
	ablations := flag.Bool("ablations", false, "run the extra ablations (§III-B1, §VII)")
	energyFig := flag.Bool("energy", false, "print the first-order energy estimate")
	hsFlag := flag.Bool("heterosync", false, "run the HeteroSync/Lulesh comparison (§V)")
	extFlag := flag.Bool("extended", false, "run the 4 CHAI benchmarks gem5 could not (§V)")
	csvPath := flag.String("csv", "", "also export the Fig. 4/5 sweep as CSV to this file")
	cacheDir := flag.String("cache", "", "persist sweep results in this directory (re-runs become cache hits)")
	jobs := flag.Int("j", 0, "parallel simulation jobs (0 = GOMAXPROCS)")
	flag.Parse()

	all := !(*fig4 || *fig5 || *fig6 || *fig7 || *table1 || *table2 || *table3 || *ablations || *energyFig || *hsFlag || *extFlag)
	out := os.Stdout

	// The figure sweeps run through the job engine: cells execute in
	// parallel on the worker pool, and with -cache every cell is
	// memoized across invocations.
	cache, err := engine.NewCache(0, *cacheDir)
	check(err)
	eng := engine.New(engine.Config{Workers: *jobs, Cache: cache})
	defer eng.Close()
	runSweep := func(benches []string, variants []core.Options) (*figures.Sweep, error) {
		// Pre-submit every cell so the pool works on them concurrently;
		// the sequential waits below then dedup against the live jobs.
		for _, b := range benches {
			for _, v := range variants {
				if _, err := eng.Submit(engine.EvalSpec(b, v)); err != nil {
					break // queue full: the Runner below resubmits
				}
			}
		}
		return figures.RunSweepVia(func(bench string, opts core.Options) (system.Results, error) {
			return eng.RunResults(context.Background(), engine.EvalSpec(bench, opts))
		}, benches, variants)
	}

	if all || *table1 {
		core.WriteTableI(out)
	}
	if all || *table2 {
		figures.WriteTable2(out)
	}
	if all || *table3 {
		figures.WriteTable3(out)
	}

	if all || *fig4 || *fig5 {
		// Figs. 4 and 5 share the baseline/noWBcleanVic/llcWB runs; run
		// the union of their variants once.
		variants := []core.Options{
			{},
			{EarlyDirtyResponse: true},
			{NoWBCleanVicToMem: true},
			{LLCWriteBack: true},
			{LLCWriteBack: true, UseL3OnWT: true},
		}
		sw, err := runSweep(chai.Names(), variants)
		check(err)
		if all || *fig4 {
			figures.WriteFig4(out, sw)
		}
		if all || *fig5 {
			figures.WriteFig5(out, sw)
		}
		if *csvPath != "" {
			f, err := os.Create(*csvPath)
			check(err)
			check(figures.WriteCSV(f, sw))
			check(f.Close())
			fmt.Fprintf(out, "\nCSV sweep written to %s\n", *csvPath)
		}
	}

	if all || *fig6 || *fig7 || *energyFig {
		sw, err := runSweep(chai.CollaborativeFive(), figures.Fig6Variants())
		check(err)
		if all || *fig6 {
			figures.WriteFig6(out, sw)
		}
		if all || *fig7 {
			figures.WriteFig7(out, sw)
		}
		if all || *energyFig {
			figures.WriteEnergy(out, sw)
		}
	}

	if all || *hsFlag {
		check(figures.WriteHeteroSync(out))
	}

	if all || *extFlag {
		check(figures.WriteExtended(out))
	}

	if all || *ablations {
		runAblations(out)
	}

	if st := eng.Stats(); st.Submitted+st.CacheHits > 0 {
		fmt.Fprintf(os.Stderr, "hscfig: engine ran %d simulations, %d served from cache\n",
			st.Done, st.CacheHits)
	}
}

// runAblations covers the paper's secondary design points: dropping
// clean victims from the LLC entirely (§III-B1), the limited-pointer
// sharer list (§IV-B), and the future-work directory replacement policy
// and dirty-sharer deallocation rule (§VII).
func runAblations(out *os.File) {
	fmt.Fprintf(out, "\nAblations\n=========\n")
	cases := []struct {
		label string
		opts  core.Options
	}{
		{"baseline", core.Options{}},
		{"noWBcleanVicLLC (III-B1)", core.Options{NoWBCleanVicToMem: true, NoWBCleanVicToLLC: true}},
		{"sharers, limited-4 ptrs", core.Options{Tracking: core.TrackOwnerSharers, LLCWriteBack: true, UseL3OnWT: true, LimitedPointers: 4}},
		{"sharers, fewest-sharers repl", core.Options{Tracking: core.TrackOwnerSharers, LLCWriteBack: true, UseL3OnWT: true, DirRepl: core.DirReplFewestSharers}},
		{"sharers, keep dirty sharers", core.Options{Tracking: core.TrackOwnerSharers, LLCWriteBack: true, UseL3OnWT: true, KeepDirtySharersOnEvict: true}},
	}
	fmt.Fprintf(out, "%-30s %-8s %12s %10s %10s\n", "variant", "bench", "cycles", "mem", "probes")
	for _, bench := range chai.CollaborativeFive() {
		for _, c := range cases {
			res, err := figures.Run(bench, c.opts)
			check(err)
			fmt.Fprintf(out, "%-30s %-8s %12d %10d %10d\n",
				c.label, bench, res.Cycles, res.MemAccesses(), res.ProbesSent)
		}
	}

	// Directory-pressure study (§VII future work): with a directory far
	// smaller than the working set, entry evictions and their backward
	// invalidations dominate, and the replacement policy matters.
	fmt.Fprintf(out, "\nDirectory-pressure ablation (512-entry directory)\n")
	fmt.Fprintf(out, "%-30s %-8s %12s %10s %12s %12s\n",
		"variant", "bench", "cycles", "probes", "dirEvicts", "backInvals")
	pressure := []struct {
		label string
		opts  core.Options
	}{
		{"sharers, tree-PLRU", core.Options{Tracking: core.TrackOwnerSharers, LLCWriteBack: true, UseL3OnWT: true}},
		{"sharers, fewest-sharers repl", core.Options{Tracking: core.TrackOwnerSharers, LLCWriteBack: true, UseL3OnWT: true, DirRepl: core.DirReplFewestSharers}},
		{"sharers, keep dirty sharers", core.Options{Tracking: core.TrackOwnerSharers, LLCWriteBack: true, UseL3OnWT: true, KeepDirtySharersOnEvict: true}},
	}
	for _, bench := range chai.CollaborativeFive() {
		for _, c := range pressure {
			cfg := figures.EvalSystemConfig(c.opts)
			cfg.Geometry.DirEntries = 512
			res, err := figures.RunOn(bench, cfg)
			check(err)
			fmt.Fprintf(out, "%-30s %-8s %12d %10d %12d %12d\n",
				c.label, bench, res.Cycles, res.ProbesSent,
				res.Stats["dir.entry_evictions"], res.Stats["dir.backward_inval_probes"])
		}
	}

	// Read-only elision (§IX future work) on the benchmarks with
	// read-only inputs.
	fmt.Fprintf(out, "\nRead-only elision ablation (§IX)\n")
	fmt.Fprintf(out, "%-8s %-18s %12s %10s %12s\n", "bench", "variant", "cycles", "probes", "roElided")
	for _, bench := range []string{"bs", "sc", "hsti", "hsto", "rscd", "rsct"} {
		for _, c := range []struct {
			label string
			opts  core.Options
		}{
			{"baseline", core.Options{}},
			{"baseline+RO", core.Options{ReadOnlyElision: true}},
			{"sharers", core.Options{Tracking: core.TrackOwnerSharers, LLCWriteBack: true, UseL3OnWT: true}},
			{"sharers+RO", core.Options{Tracking: core.TrackOwnerSharers, LLCWriteBack: true, UseL3OnWT: true, ReadOnlyElision: true}},
		} {
			res, err := figures.Run(bench, c.opts)
			check(err)
			fmt.Fprintf(out, "%-8s %-18s %12d %10d %12d\n",
				bench, c.label, res.Cycles, res.ProbesSent,
				res.Stats["dir.readonly_elided"])
		}
	}

	// Distributed directory (§VII future work): the tracked protocol
	// over 1/2/4 address-interleaved banks.
	fmt.Fprintf(out, "\nDistributed-directory ablation (§VII)\n")
	fmt.Fprintf(out, "%-8s %6s %12s %10s %10s\n", "bench", "banks", "cycles", "probes", "mem")
	for _, bench := range chai.CollaborativeFive() {
		for _, banks := range []int{1, 2, 4} {
			cfg := figures.EvalSystemConfig(core.Options{
				Tracking: core.TrackOwnerSharers, LLCWriteBack: true, UseL3OnWT: true})
			cfg.DirBanks = banks
			res, err := figures.RunOn(bench, cfg)
			check(err)
			fmt.Fprintf(out, "%-8s %6d %12d %10d %10d\n",
				bench, banks, res.Cycles, res.ProbesSent, res.MemAccesses())
		}
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hscfig:", err)
		os.Exit(1)
	}
}
