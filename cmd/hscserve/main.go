// Command hscserve exposes the simulation job engine as an HTTP/JSON
// service: submit canonical job specs, poll their status, and fetch
// canonical results, with every completed run memoized in the
// content-addressed cache.
//
// Usage:
//
//	hscserve [-addr :8080] [-workers GOMAXPROCS] [-queue 256] [-cache dir] [-timeout 0]
//
// API:
//
//	POST /jobs                submit a Spec (JSON); 202 accepted,
//	                          200 done (cache hit), 429 queue full.
//	                          ?wait=1 blocks until the result is ready.
//	GET  /jobs/{hash}         job status
//	GET  /jobs/{hash}/result  canonical result JSON
//	GET  /metrics             engine + cache counters (plain text)
//	GET  /healthz             liveness
//
// Example:
//
//	curl -d '{"bench":"tq","scale":1,"threads":8,"protocol":{"tracking":"owner+sharers","llcWriteBack":true,"useL3OnWT":true}}' \
//	    'localhost:8080/jobs?wait=1'
//
// On SIGINT/SIGTERM the server stops accepting jobs, cancels the
// queue, lets in-flight simulations finish (bounded by -drain), and
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"hscsim/internal/engine"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size")
	queue := flag.Int("queue", 256, "max queued jobs before 429")
	cacheDir := flag.String("cache", "", "on-disk result cache directory (empty = memory only)")
	cacheEntries := flag.Int("cache-entries", 0, "max in-memory cache entries (0 = 4096)")
	timeout := flag.Duration("timeout", 0, "per-job execution timeout (0 = none)")
	drain := flag.Duration("drain", time.Minute, "max wait for in-flight jobs on shutdown")
	flag.Parse()

	cache, err := engine.NewCache(*cacheEntries, *cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hscserve:", err)
		os.Exit(1)
	}
	eng := engine.New(engine.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		Cache:      cache,
		JobTimeout: *timeout,
	})

	srv := &http.Server{Addr: *addr, Handler: engine.NewServer(eng)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "hscserve: listening on %s (workers=%d queue=%d cache=%q)\n",
		*addr, *workers, *queue, *cacheDir)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "hscserve:", err)
			os.Exit(1)
		}
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "hscserve: %v, draining (in-flight jobs finish, queue is cancelled)\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := eng.Drain(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "hscserve: drain:", err)
		}
		_ = srv.Shutdown(ctx)
		st := eng.Stats()
		fmt.Fprintf(os.Stderr, "hscserve: done=%d cached=%d failed=%d canceled=%d\n",
			st.Done, st.CacheHits, st.Failed, st.Canceled)
	}
}
