// Command hscserve exposes the simulation job engine as an HTTP/JSON
// service: submit canonical job specs or whole sweeps, poll status,
// and fetch canonical results, with every completed run memoized in
// the content-addressed cache. With -peers, N hscserve processes form
// one coherent fleet: job hashes are consistent-hash routed to a home
// node, peers read through each other's caches, and results computed
// anywhere warm the whole cluster.
//
// Usage:
//
//	hscserve [-addr :8080] [-workers GOMAXPROCS] [-queue 256] [-cache dir] [-timeout 0]
//	         [-self http://host:8080] [-peers http://a:8080,http://b:8080] [-cells 16]
//
// API:
//
//	POST /jobs                submit a Spec (JSON); 202 accepted,
//	                          200 done (cache hit), 413 oversize,
//	                          429 queue full. ?wait=1 blocks.
//	                          Non-home submissions are proxied to the
//	                          job's home peer (local fallback).
//	GET  /jobs/{hash}         job status (cache-backed after retirement)
//	GET  /jobs/{hash}/result  canonical result JSON
//	POST /sweeps              submit a SweepSpec; streams NDJSON
//	                          per-cell results as they complete
//	GET  /sweeps/{id}         sweep progress / resumption
//	GET  /cache/{hash}        local cache tier (peer read-through)
//	POST /cache/{hash}        local cache tier (peer async fill)
//	GET  /ring                fleet membership
//	GET  /metrics             engine + fleet counters (plain text)
//	GET  /healthz             liveness
//
// Example (3-node loopback fleet):
//
//	hscserve -addr 127.0.0.1:8081 -self http://127.0.0.1:8081 -peers http://127.0.0.1:8082,http://127.0.0.1:8083 &
//	hscserve -addr 127.0.0.1:8082 -self http://127.0.0.1:8082 -peers http://127.0.0.1:8081,http://127.0.0.1:8083 &
//	hscserve -addr 127.0.0.1:8083 -self http://127.0.0.1:8083 -peers http://127.0.0.1:8081,http://127.0.0.1:8082 &
//	hscsweep -server http://127.0.0.1:8081 -bench tq
//
// On SIGINT/SIGTERM the server stops accepting jobs, cancels the
// queue, lets in-flight simulations finish (bounded by -drain), and
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"hscsim/internal/engine"
	"hscsim/internal/fleet"
	"hscsim/internal/stats"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size")
	queue := flag.Int("queue", 256, "max queued jobs before 429")
	cacheDir := flag.String("cache", "", "on-disk result cache directory (empty = memory only)")
	cacheEntries := flag.Int("cache-entries", 0, "max in-memory cache entries (0 = 4096)")
	timeout := flag.Duration("timeout", 0, "per-job execution timeout (0 = none)")
	drain := flag.Duration("drain", time.Minute, "max wait for in-flight jobs on shutdown")
	self := flag.String("self", "", "this node's advertised base URL (required with -peers)")
	peersFlag := flag.String("peers", "", "comma-separated peer base URLs forming the fleet")
	cells := flag.Int("cells", 0, "max concurrently in-flight sweep cells (0 = 16)")
	peerTimeout := flag.Duration("peer-timeout", 30*time.Second, "per-attempt peer request timeout")
	flag.Parse()

	var peers []string
	for _, p := range strings.Split(*peersFlag, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	if len(peers) > 0 && *self == "" {
		fmt.Fprintln(os.Stderr, "hscserve: -peers requires -self (this node's advertised URL)")
		os.Exit(2)
	}
	if *self == "" {
		*self = "http://" + *addr // single-node: any stable placeholder works
	}

	local, err := engine.NewCache(*cacheEntries, *cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hscserve:", err)
		os.Exit(1)
	}
	ring := fleet.NewRing(*self, peers)
	client := fleet.NewClient(*peerTimeout)
	reg := stats.NewRegistry()
	var cache engine.ResultCache = local
	var tiered *fleet.TieredCache
	if len(ring.Members()) > 1 {
		tiered = fleet.NewTieredCache(local, ring, client, reg)
		cache = tiered
	}
	eng := engine.New(engine.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		Cache:      cache,
		JobTimeout: *timeout,
		Registry:   reg,
	})
	node := fleet.New(eng, ring, tiered, fleet.Options{Client: client, CellParallelism: *cells})

	srv := &http.Server{Addr: *addr, Handler: node.Handler()}
	errc := make(chan error, 1)
	//lockcheck:spawn process-lifetime accept loop; main exits through it or through a signal
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "hscserve: listening on %s (workers=%d queue=%d cache=%q fleet=%d)\n",
		*addr, *workers, *queue, *cacheDir, len(ring.Members()))

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "hscserve:", err)
			os.Exit(1)
		}
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "hscserve: %v, draining (in-flight jobs finish, queue is cancelled)\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := eng.Drain(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "hscserve: drain:", err)
		}
		_ = srv.Shutdown(ctx)
		st := eng.Stats()
		fmt.Fprintf(os.Stderr, "hscserve: done=%d cached=%d failed=%d canceled=%d\n",
			st.Done, st.CacheHits, st.Failed, st.Canceled)
	}
}
