package hscsim_test

import (
	"fmt"
	"testing"

	"hscsim"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	cfg := hscsim.EvalConfig(hscsim.ProtocolOptions{
		Tracking:     hscsim.TrackOwnerSharers,
		LLCWriteBack: true,
		UseL3OnWT:    true,
	})
	res, err := hscsim.RunBenchmark("tq", cfg, hscsim.Params{Scale: 1, CPUThreads: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.Name != "tq" || res.Config != "sharersTracking" {
		t.Fatalf("results = %+v", res)
	}
}

func TestBenchmarkListing(t *testing.T) {
	if len(hscsim.Benchmarks()) != 10 {
		t.Fatal("expected 10 bundled benchmarks")
	}
	if len(hscsim.CollaborativeBenchmarks()) != 5 {
		t.Fatal("expected 5 collaborative benchmarks")
	}
	if _, err := hscsim.NewBenchmark("hsto", hscsim.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	if _, err := hscsim.RunBenchmark("missing", hscsim.DefaultConfig(), hscsim.DefaultParams()); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestCustomWorkloadThroughPublicAPI(t *testing.T) {
	arena := hscsim.NewArena(0x4000_0000)
	cell := arena.AllocWords(1)
	kernel := &hscsim.Kernel{
		Name: "inc", Workgroups: 2, WavesPerWG: 2, CodeAddr: 0xFD00_0000,
		Fn: func(w *hscsim.Wave) {
			w.AtomicSysAdd(cell, 1)
		},
	}
	s := hscsim.NewSystem(hscsim.EvalConfig(hscsim.ProtocolOptions{}))
	_, err := s.Run(hscsim.Workload{
		Name: "custom",
		Threads: []func(*hscsim.CPUThread){
			func(c *hscsim.CPUThread) {
				h := c.Launch(kernel)
				c.AtomicAdd(cell, 10)
				c.Wait(h)
			},
		},
		Verify: func(fm *hscsim.Memory) error {
			if got := fm.Read(cell); got != 14 {
				return fmt.Errorf("cell = %d, want 14", got)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDefaultConfigMatchesTableIII(t *testing.T) {
	cfg := hscsim.DefaultConfig()
	if cfg.NumCorePairs != 4 || cfg.CoresPerPair != 2 {
		t.Fatal("CorePair count deviates from Table III")
	}
	if cfg.GPUDisp.NumCUs != 8 {
		t.Fatal("CU count deviates from Table III")
	}
	if cfg.Geometry.LLCSizeBytes != 16<<20 || cfg.CorePair.L2SizeBytes != 2<<20 {
		t.Fatal("cache sizes deviate from Table II")
	}
}
