// Determinism goldens: one full CHAI run per protocol variant, hashed
// (canonical stats dump + every traced interconnect message) and pinned
// in testdata/golden_runs.json. The simulator's bit-for-bit determinism
// is load-bearing — the runtime oracle, the model checker, and the
// content-addressed job cache (engine.Cache keys results by spec hash,
// assuming rerun ≡ cached) all rest on it — so any change that perturbs
// a single event, message, or counter anywhere in a run fails here.
//
// The pinned hashes were generated on the seed binary-heap scheduler;
// the calendar-queue event loop and the message pool reproduce them
// byte-for-byte, which is the central safety argument for that swap
// (see DESIGN.md, "Event loop"). Regenerate (only for intentional
// simulation-visible changes, alongside an engine.Version bump) with:
//
//	go test -run TestGoldenRuns -update-goldens .
package hscsim_test

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"hscsim"
	"hscsim/internal/verify"
)

var updateGoldens = flag.Bool("update-goldens", false, "rewrite testdata/golden_runs.json from the current simulator")

// goldenBenches are the CHAI workloads pinned per variant: tq is the
// paper's running example (CPU↔GPU task-queue collaboration, heavy
// atomics), sc (stream compaction) adds DMA-free data-parallel traffic
// with an order-dependent output image — together they exercise every
// message class on every variant.
var goldenBenches = []string{"tq", "sc"}

// goldenHash runs one bench × variant cell and hashes the complete
// observable output: every interconnect message (streamed through the
// trace writer into the hash) followed by a canonical stats dump.
func goldenHash(t testing.TB, bench string, opts hscsim.ProtocolOptions) string {
	t.Helper()
	w, err := hscsim.NewBenchmark(bench, hscsim.Params{Scale: 1, CPUThreads: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := hscsim.NewSystem(hscsim.EvalConfig(opts))
	h := sha256.New()
	s.TraceTo(h) // trace bytes stream straight into the hash
	res, err := s.Run(w)
	if err != nil {
		t.Fatalf("%s/%s: %v", bench, opts.Named(), err)
	}
	keys := make([]string, 0, len(res.Stats))
	for k := range res.Stats { //hsclint:deterministic — sorted below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(h, "cycles=%d\n", res.Cycles)
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%d\n", k, res.Stats[k])
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

const goldenPath = "testdata/golden_runs.json"

func TestGoldenRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full CHAI runs; skipped in -short")
	}
	got := map[string]string{}
	for _, bench := range goldenBenches {
		for _, opts := range verify.Variants() {
			key := bench + "/" + opts.Named()
			got[key] = goldenHash(t, bench, opts)
		}
	}

	if *updateGoldens {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden hashes to %s", len(got), goldenPath)
		return
	}

	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (generate with: go test -run TestGoldenRuns -update-goldens .)", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d cells, run produced %d — variant/bench list drifted", len(want), len(got))
	}
	for key, wh := range want {
		if gh, ok := got[key]; !ok {
			t.Errorf("%s: pinned in goldens but not produced by this run", key)
		} else if gh != wh {
			t.Errorf("%s: run hash %s != golden %s — the simulation is no longer byte-identical; "+
				"if this change is intentional it needs an engine.Version bump and -update-goldens", key, gh, wh)
		}
	}
}
