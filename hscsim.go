// Package hscsim is a simulator for Heterogeneous System Coherence in
// unified-memory CPU–GPU APUs, reproducing "Enhanced System-Level
// Coherence for Heterogeneous Unified Memory Architectures" (IISWC
// 2024).
//
// The simulated machine is an AMD-APU-class system: four CorePairs of
// two CPU cores behind MOESI L2s, an eight-CU GPU behind VIPER (VI)
// TCP/TCC caches, a DMA engine, and a system-level directory backed by
// a last-level cache — the gem5 model the paper starts from. On top of
// the stateless-directory baseline the simulator implements every
// enhancement the paper evaluates: early dirty-probe responses (§III-A),
// clean-victim write-back elision (§III-B/B1), a write-back LLC
// (§III-C), and the precise state-tracking directory with owner or
// owner+sharer tracking (§IV, Table I).
//
// # Quick start
//
//	cfg := hscsim.DefaultConfig()
//	cfg.Protocol = hscsim.ProtocolOptions{Tracking: hscsim.TrackOwnerSharers, LLCWriteBack: true, UseL3OnWT: true}
//	res, err := hscsim.RunBenchmark("tq", cfg, hscsim.DefaultParams())
//
// Custom workloads are plain Go functions over the CPUThread/Wave
// contexts; see the examples directory.
package hscsim

import (
	"net/http"

	"hscsim/internal/chai"
	"hscsim/internal/core"
	"hscsim/internal/energy"
	"hscsim/internal/engine"
	"hscsim/internal/figures"
	"hscsim/internal/fleet"
	"hscsim/internal/heterosync"
	"hscsim/internal/memdata"
	"hscsim/internal/prog"
	"hscsim/internal/stats"
	"hscsim/internal/system"
)

// Re-exported configuration and result types. Aliases keep the public
// surface in one import while the implementation lives in internal
// packages.
type (
	// Config describes the whole simulated APU (Tables II and III).
	Config = system.Config
	// ProtocolOptions selects the directory/LLC protocol variant.
	ProtocolOptions = core.Options
	// TrackingMode selects the §IV directory organization.
	TrackingMode = core.TrackingMode
	// Results are the measured outputs of one run.
	Results = system.Results
	// Workload is a runnable benchmark.
	Workload = system.Workload
	// System is an assembled simulated APU.
	System = system.System
	// Params scales the bundled CHAI workloads.
	Params = chai.Params

	// CPUThread is the context CPU-thread programs run against.
	CPUThread = prog.CPUThread
	// Wave is the context GPU wavefront programs run against.
	Wave = prog.Wave
	// Kernel describes a GPU grid.
	Kernel = prog.Kernel
	// KernelHandle tracks kernel completion.
	KernelHandle = prog.KernelHandle
	// Arena is a bump allocator over the unified memory space.
	Arena = prog.Arena
	// Memory is the functional view of unified memory.
	Memory = memdata.Memory
	// Addr is a byte address in unified memory.
	Addr = memdata.Addr
	// AtomicOp identifies an atomic read-modify-write operation.
	AtomicOp = memdata.AtomicOp
)

// Tracking modes (§IV).
const (
	TrackNone         = core.TrackNone
	TrackOwner        = core.TrackOwner
	TrackOwnerSharers = core.TrackOwnerSharers
)

// Directory-cache replacement policies (tree-PLRU default; the §VII
// future-work fewest-sharers policy as an ablation).
const (
	DirReplPLRU          = core.DirReplPLRU
	DirReplFewestSharers = core.DirReplFewestSharers
)

// Atomic operations.
const (
	AtomicAdd  = memdata.AtomicAdd
	AtomicMax  = memdata.AtomicMax
	AtomicMin  = memdata.AtomicMin
	AtomicExch = memdata.AtomicExch
	AtomicCAS  = memdata.AtomicCAS
	AtomicAnd  = memdata.AtomicAnd
	AtomicOr   = memdata.AtomicOr
)

// DefaultConfig returns the paper's full-size configuration (Tables II
// and III) with the baseline protocol.
func DefaultConfig() Config { return system.Default() }

// EvalConfig returns the evaluation configuration used to regenerate
// the paper's figures: Table II with caches scaled to the bundled
// workload sizes (see DESIGN.md).
func EvalConfig(opts ProtocolOptions) Config { return figures.EvalSystemConfig(opts) }

// DefaultParams returns the default workload scaling.
func DefaultParams() Params { return chai.DefaultParams() }

// NewSystem assembles a simulated APU.
func NewSystem(cfg Config) *System { return system.New(cfg) }

// NewArena returns a bump allocator starting at base.
func NewArena(base Addr) *Arena { return prog.NewArena(base) }

// Benchmarks lists the bundled CHAI workloads the paper evaluates (§V).
func Benchmarks() []string { return chai.Names() }

// ExtendedBenchmarks lists the four CHAI benchmarks the paper could not
// run under gem5's O3 CPU (§V): bfs, sssp, tqh, cedt. This simulator
// runs all fourteen.
func ExtendedBenchmarks() []string { return chai.ExtendedNames() }

// HeteroSyncBenchmarks lists the bundled HeteroSync/Lulesh workloads
// the paper also evaluated (§V) — GPU-internal synchronization with
// limited CPU↔GPU collaboration.
func HeteroSyncBenchmarks() []string { return heterosync.Names() }

// NewHeteroSyncBenchmark builds a bundled HeteroSync workload by name.
func NewHeteroSyncBenchmark(name string, scale int) (Workload, error) {
	return heterosync.ByName(name, heterosync.Params{Scale: scale})
}

// CollaborativeBenchmarks lists the five heavily collaborating
// workloads the paper uses for the state-tracking figures.
func CollaborativeBenchmarks() []string { return chai.CollaborativeFive() }

// NewBenchmark builds a bundled CHAI workload by name.
func NewBenchmark(name string, p Params) (Workload, error) { return chai.ByName(name, p) }

// RunBenchmark builds and runs one bundled workload on a fresh system.
func RunBenchmark(name string, cfg Config, p Params) (Results, error) {
	w, err := chai.ByName(name, p)
	if err != nil {
		return Results{}, err
	}
	return system.New(cfg).Run(w)
}

// EnergyCosts are per-event energies (pJ) for EstimateEnergy.
type EnergyCosts = energy.Costs

// EnergyBreakdown is a per-component energy estimate.
type EnergyBreakdown = energy.Breakdown

// DefaultEnergyCosts returns first-order per-event energies.
func DefaultEnergyCosts() EnergyCosts { return energy.DefaultCosts() }

// EstimateEnergy converts a run's statistics into an energy estimate
// (the paper's Figs. 5 and 7 metrics are energy proxies; this makes the
// proxy explicit).
func EstimateEnergy(res Results, c EnergyCosts) EnergyBreakdown {
	return energy.Estimate(res.Stats, c)
}

// Job-engine re-exports: the concurrent simulation engine with its
// content-addressed result cache (see DESIGN.md, "Job engine & result
// cache"). Simulations are deterministic functions of their JobSpec, so
// results are memoized by spec hash and re-runs are cache hits.
type (
	// JobEngine is a bounded worker pool executing JobSpecs with
	// singleflight dedup in front of a JobCache.
	JobEngine = engine.Engine
	// JobEngineConfig sizes a JobEngine.
	JobEngineConfig = engine.Config
	// JobSpec is a canonical simulation job (workload × protocol ×
	// topology × seed); its SHA-256 hash is the result's cache key.
	JobSpec = engine.Spec
	// JobCache is the content-addressed result store (in-memory LRU
	// plus optional on-disk directory).
	JobCache = engine.Cache
	// SimJob is one submitted job: wait on it, cancel it, read its
	// canonical result bytes.
	SimJob = engine.Job
)

// NewJobEngine starts a job engine and its worker pool.
func NewJobEngine(cfg JobEngineConfig) *JobEngine { return engine.New(cfg) }

// NewJobCache returns a result cache holding maxEntries in memory
// (≤0 = default), persisted under dir when non-empty.
func NewJobCache(maxEntries int, dir string) (*JobCache, error) {
	return engine.NewCache(maxEntries, dir)
}

// EvalJobSpec is the job for one cell of the paper's evaluation sweep
// (the figures configuration at the figures workload sizes).
func EvalJobSpec(bench string, opts ProtocolOptions) JobSpec {
	return engine.EvalSpec(bench, opts)
}

// NewJobServer wraps a job engine in the hscserve HTTP/JSON API.
func NewJobServer(e *JobEngine) http.Handler { return engine.NewServer(e) }

// DecodeJobResult parses the canonical result bytes a job returns.
func DecodeJobResult(b []byte) (Results, error) { return engine.DecodeResult(b) }

// Fleet re-exports: the distributed sweep fabric (internal/fleet) that
// turns N hscserve nodes into one coherent cluster — a batch sweep API
// with NDJSON result streaming, consistent-hash (rendezvous) routing of
// job hashes to home nodes, and a peer-backed read-through cache tier.
// Content addressing makes the tier trivially coherent: a key either
// maps to the one result its spec can produce, or is absent.
type (
	// JobResultCache is the cache interface the engine memoizes
	// through; JobCache and FleetCache both implement it.
	JobResultCache = engine.ResultCache
	// SweepSpec describes a whole sweep (benches × variants × topology
	// points) expanded server-side into canonical JobSpec cells.
	SweepSpec = engine.SweepSpec
	// SweepPoint is one structural point of a sweep grid.
	SweepPoint = engine.SweepPoint
	// FleetRing is the consistent-hash membership view.
	FleetRing = fleet.Ring
	// FleetClient is the retrying peer HTTP client.
	FleetClient = fleet.Client
	// FleetCache is the tiered result cache: local LRU+disk with peer
	// read-through and async fill.
	FleetCache = fleet.TieredCache
	// FleetNode is one cluster node's HTTP front end.
	FleetNode = fleet.Fleet
	// FleetOptions tunes a FleetNode.
	FleetOptions = fleet.Options
)

// NewFleetRing builds the membership view from this node's advertised
// URL and its peer list.
func NewFleetRing(self string, peers []string) *FleetRing { return fleet.NewRing(self, peers) }

// NewFleetCache layers peer read-through over a local cache; pass the
// result as JobEngineConfig.Cache so the engine's misses consult the
// fleet before simulating.
func NewFleetCache(local *JobCache, ring *FleetRing, client *FleetClient, reg *stats.Registry) *FleetCache {
	return fleet.NewTieredCache(local, ring, client, reg)
}

// NewFleetNode wraps an engine in the full fleet HTTP API (jobs,
// sweeps, peer cache tier, ring introspection).
func NewFleetNode(e *JobEngine, ring *FleetRing, cache *FleetCache, opts FleetOptions) *FleetNode {
	return fleet.New(e, ring, cache, opts)
}

// NamedProtocolVariant resolves the conventional variant names
// (baseline, ownerTracking, sharersTracking) used across the tools.
func NamedProtocolVariant(name string) (engine.ProtocolSpec, error) {
	return engine.NamedVariant(name)
}
