// Quickstart: run one bundled CHAI workload (the task-queue system, the
// most fine-grained collaborative one) on the baseline protocol and on
// the paper's full enhancement stack, and compare the headline metrics.
package main

import (
	"fmt"
	"log"

	"hscsim"
)

func main() {
	baseline := hscsim.EvalConfig(hscsim.ProtocolOptions{})
	enhanced := hscsim.EvalConfig(hscsim.ProtocolOptions{
		Tracking:     hscsim.TrackOwnerSharers,
		LLCWriteBack: true,
		UseL3OnWT:    true,
	})

	base, err := hscsim.RunBenchmark("tq", baseline, hscsim.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	opt, err := hscsim.RunBenchmark("tq", enhanced, hscsim.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Task Queue System (tq) — baseline vs sharers-tracking directory + write-back LLC")
	fmt.Printf("%-22s %12s %12s %10s\n", "metric", "baseline", "enhanced", "change")
	row := func(name string, b, o uint64) {
		change := 100 * (float64(b) - float64(o)) / float64(b)
		fmt.Printf("%-22s %12d %12d %+9.1f%%\n", name, b, o, -change)
	}
	row("simulated cycles", base.Cycles, opt.Cycles)
	row("memory accesses", base.MemAccesses(), opt.MemAccesses())
	row("directory probes", base.ProbesSent, opt.ProbesSent)
	row("interconnect bytes", base.NoCBytes, opt.NoCBytes)
}
