// Taskqueue: build a *custom* collaborative workload against the public
// API — CPU producers feed a work queue in unified memory while a GPU
// kernel consumes it with system-scope atomics — and watch how the
// protocol variant changes the coherence traffic it generates.
//
// This is the pattern to copy when writing your own workloads: plain Go
// functions over hscsim.CPUThread / hscsim.Wave, synchronizing only
// through simulated memory.
package main

import (
	"fmt"
	"log"

	"hscsim"
)

const (
	nItems   = 300
	gpuWaves = 16
)

func buildWorkload() hscsim.Workload {
	arena := hscsim.NewArena(0x2000_0000)
	items := arena.AllocWords(nItems)
	ready := arena.AllocWords(nItems)
	out := arena.AllocWords(nItems)
	head := arena.AllocWords(1)
	prodIdx := arena.AllocWords(1)

	at := func(base hscsim.Addr, i int) hscsim.Addr { return base + hscsim.Addr(i*8) }

	kernel := &hscsim.Kernel{
		Name: "consume", Workgroups: 8, WavesPerWG: 2, CodeAddr: 0xF900_0000,
		Fn: func(w *hscsim.Wave) {
			for {
				t := w.AtomicSysAdd(head, 1)
				if int(t) >= nItems {
					return
				}
				for w.Load(at(ready, int(t))) == 0 {
					w.Compute(32) // poll backoff
				}
				v := w.Load(at(items, int(t)))
				w.Compute(64)
				w.Store(at(out, int(t)), v*v)
			}
		},
	}

	produce := func(t *hscsim.CPUThread) {
		for {
			s := t.AtomicAdd(prodIdx, 1)
			if int(s) >= nItems {
				return
			}
			t.Store(at(items, int(s)), s+3)
			t.Store(at(ready, int(s)), 1)
		}
	}

	return hscsim.Workload{
		Name: "custom-taskqueue",
		Threads: []func(*hscsim.CPUThread){
			func(t *hscsim.CPUThread) {
				h := t.Launch(kernel)
				produce(t)
				t.Wait(h)
			},
			produce, produce, produce,
		},
		Verify: func(fm *hscsim.Memory) error {
			for i := 0; i < nItems; i++ {
				want := (uint64(i) + 3) * (uint64(i) + 3)
				if got := fm.Read(at(out, i)); got != want {
					return fmt.Errorf("out[%d] = %d, want %d", i, got, want)
				}
			}
			return nil
		},
	}
}

func main() {
	for _, opts := range []hscsim.ProtocolOptions{
		{},
		{Tracking: hscsim.TrackOwner, LLCWriteBack: true, UseL3OnWT: true},
		{Tracking: hscsim.TrackOwnerSharers, LLCWriteBack: true, UseL3OnWT: true},
	} {
		s := hscsim.NewSystem(hscsim.EvalConfig(opts))
		res, err := s.Run(buildWorkload())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s cycles=%-8d probes=%-6d mem=%-5d\n",
			opts.Named(), res.Cycles, res.ProbesSent, res.MemAccesses())
	}
}
