// DMA pipeline: a custom workload exercising the directory's DMA state
// machine (Fig. 3 of the paper). The host DMA-ingests frames, a CPU
// worker pre-processes each frame, a GPU kernel post-processes it, and
// the result is DMA-egressed — the shape of a capture→process→emit
// media pipeline on an APU.
//
// In the baseline every DMA line request broadcasts probes; with the
// tracking directory, DMA reads/writes of untracked lines are
// probe-free, which is visible in the probe counts printed below.
package main

import (
	"fmt"
	"log"

	"hscsim"
)

const (
	frames   = 3
	px       = 2048 // words per frame
	gpuWaves = 16
)

func buildWorkload() hscsim.Workload {
	arena := hscsim.NewArena(0x3000_0000)
	in := arena.AllocWords(frames * px)
	mid := arena.AllocWords(frames * px)
	out := arena.AllocWords(frames * px)
	midReady := arena.AllocWords(frames)

	at := func(base hscsim.Addr, i int) hscsim.Addr { return base + hscsim.Addr(i*8) }

	mkKernel := func(f int) *hscsim.Kernel {
		return &hscsim.Kernel{
			Name: fmt.Sprintf("post%d", f), Workgroups: 8, WavesPerWG: 2,
			CodeAddr: 0xFA00_0000,
			Fn: func(w *hscsim.Wave) {
				for base := w.Global * 16; base < px; base += gpuWaves * 16 {
					addrs := make([]hscsim.Addr, 16)
					for k := range addrs {
						addrs[k] = at(mid, f*px+base+k)
					}
					vals := w.VecLoad(addrs)
					w.Compute(16)
					dst := make([]hscsim.Addr, 16)
					res := make([]uint64, 16)
					for k, v := range vals {
						dst[k] = at(out, f*px+base+k)
						res[k] = v + 1000
					}
					w.VecStore(dst, res)
				}
			},
		}
	}

	worker := func(t *hscsim.CPUThread) {
		for f := 0; f < frames; f++ {
			t.SpinUntil(at(midReady, f), func(v uint64) bool { return v != 0 })
			lo, hi := f*px, (f+1)*px
			for i := lo; i < hi; i++ {
				v := t.Load(at(in, i))
				t.Store(at(mid, i), v*3)
			}
			t.Store(at(midReady, f), 2)
		}
	}

	return hscsim.Workload{
		Name: "dma-pipeline",
		Setup: func(fm *hscsim.Memory) {
			for i := 0; i < frames*px; i++ {
				fm.Write(at(in, i), uint64(i%97))
			}
		},
		Threads: []func(*hscsim.CPUThread){
			func(t *hscsim.CPUThread) {
				for f := 0; f < frames; f++ {
					t.DMAIn(at(in, f*px), px*8) // capture
					t.Store(at(midReady, f), 1) // release the worker
					t.SpinUntil(at(midReady, f), func(v uint64) bool { return v == 2 })
					h := t.Launch(mkKernel(f))
					t.Wait(h)
					t.DMAOut(at(out, f*px), px*8) // emit
				}
			},
			worker,
		},
		Verify: func(fm *hscsim.Memory) error {
			for i := 0; i < frames*px; i++ {
				want := uint64(i%97)*3 + 1000
				if got := fm.Read(at(out, i)); got != want {
					return fmt.Errorf("out[%d] = %d, want %d", i, got, want)
				}
			}
			return nil
		},
	}
}

func main() {
	for _, opts := range []hscsim.ProtocolOptions{
		{},
		{Tracking: hscsim.TrackOwnerSharers, LLCWriteBack: true, UseL3OnWT: true},
	} {
		s := hscsim.NewSystem(hscsim.EvalConfig(opts))
		res, err := s.Run(buildWorkload())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s cycles=%-9d probes=%-7d mem=%-6d dma-reads=%d dma-writes=%d\n",
			opts.Named(), res.Cycles, res.ProbesSent, res.MemAccesses(),
			res.Stats["dma.reads"], res.Stats["dma.writes"])
	}
}
