// Histogram: contrast the two CHAI histogram formulations the paper
// evaluates. hsti (input-partitioned) makes CPU threads and GPU
// wavefronts hammer one shared bin array with atomics — worst-case
// invalidation traffic. hsto (output-partitioned) turns the same
// computation into pure read sharing. The state-tracking directory
// helps both, for different reasons: multicast invalidations for hsti,
// probe-free S-state reads for hsto.
package main

import (
	"fmt"
	"log"

	"hscsim"
)

func main() {
	variants := []hscsim.ProtocolOptions{
		{},
		{Tracking: hscsim.TrackOwner, LLCWriteBack: true, UseL3OnWT: true},
		{Tracking: hscsim.TrackOwnerSharers, LLCWriteBack: true, UseL3OnWT: true},
	}
	for _, bench := range []string{"hsti", "hsto"} {
		fmt.Printf("\n%s\n", bench)
		fmt.Printf("  %-16s %12s %10s %10s\n", "protocol", "cycles", "probes", "mem")
		for _, opts := range variants {
			res, err := hscsim.RunBenchmark(bench, hscsim.EvalConfig(opts), hscsim.DefaultParams())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-16s %12d %10d %10d\n",
				opts.Named(), res.Cycles, res.ProbesSent, res.MemAccesses())
		}
	}
}
